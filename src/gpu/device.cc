#include "gpu/device.h"

#include <cctype>

#include "common/logging.h"
#include "common/string_util.h"

namespace souffle {

DeviceSpec
DeviceSpec::v100()
{
    // Volta V100-SXM2-16GB: 80 SMs, 96 KB unified shared memory per
    // SM (opt-in per-block maximum 96 KB), HBM2 at 900 GB/s, first-
    // generation tensor cores at 125 TFLOP/s fp16 and 15.7 TFLOP/s
    // fp32 FMA. Launch and DRAM latency are slightly higher than the
    // A100's.
    DeviceSpec spec;
    spec.name = "V100-SXM2-16GB (simulated)";
    spec.numSms = 80;
    spec.sharedMemPerSmBytes = 96 * 1024;
    spec.sharedMemPerBlockLimit = 96 * 1024;
    spec.globalBytesPerUs = 900.0e3;
    spec.memLatencyUs = 1.1;
    spec.tensorCoreFlopsPerUs = 125.0e6;
    spec.fmaFlopsPerUs = 15.7e6;
    spec.aluFlopsPerUs = 15.7e6;
    spec.kernelLaunchUs = 2.5;
    spec.gridSyncUs = 0.45;
    return spec;
}

DeviceSpec
DeviceSpec::h100()
{
    // Hopper H100-SXM5-80GB: 132 SMs, 228 KB shared memory per SM
    // (227 KB per-block dynamic maximum), HBM3 at ~3.35 TB/s, fourth-
    // generation tensor cores at 989 TFLOP/s dense fp16 and
    // 66.9 TFLOP/s fp32.
    DeviceSpec spec;
    spec.name = "H100-SXM5-80GB (simulated)";
    spec.numSms = 132;
    spec.sharedMemPerSmBytes = 228 * 1024;
    spec.sharedMemPerBlockLimit = 227 * 1024;
    spec.globalBytesPerUs = 3352.0e3;
    spec.memLatencyUs = 0.8;
    spec.tensorCoreFlopsPerUs = 989.0e6;
    spec.fmaFlopsPerUs = 66.9e6;
    spec.aluFlopsPerUs = 66.9e6;
    spec.gridSyncUs = 0.30;
    return spec;
}

std::vector<std::string>
deviceSpecNames()
{
    return {"a100", "h100", "v100"};
}

DeviceSpec
DeviceSpec::byName(const std::string &name)
{
    std::string lower = name;
    for (char &ch : lower)
        ch = static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch)));
    if (lower == "a100")
        return a100();
    if (lower == "v100")
        return v100();
    if (lower == "h100")
        return h100();
    SOUFFLE_FATAL("unknown device '"
                  << name << "' (expected one of: "
                  << joinToString(deviceSpecNames(), ", ") << ")");
}

Fingerprint
deviceFingerprint(const DeviceSpec &spec)
{
    // Every field the cost models read participates; the display name
    // does not. The field order is frozen — append new fields at the
    // end so existing on-disk cache keys stay decodable (a reorder
    // silently invalidates every cache, which is safe but wasteful).
    FingerprintHasher hasher;
    hasher.absorb(spec.numSms);
    hasher.absorb(spec.sharedMemPerSmBytes);
    hasher.absorb(spec.sharedMemPerBlockLimit);
    hasher.absorb(spec.regsPerSm);
    hasher.absorb(spec.maxThreadsPerSm);
    hasher.absorb(spec.maxThreadsPerBlock);
    hasher.absorb(spec.maxBlocksPerSm);
    hasher.absorb(spec.globalBytesPerUs);
    hasher.absorb(spec.memLatencyUs);
    hasher.absorb(spec.tensorCoreFlopsPerUs);
    hasher.absorb(spec.fmaFlopsPerUs);
    hasher.absorb(spec.aluFlopsPerUs);
    hasher.absorb(spec.tensorCoreEfficiency);
    hasher.absorb(spec.fmaEfficiency);
    hasher.absorb(spec.aluEfficiency);
    hasher.absorb(spec.kernelLaunchUs);
    hasher.absorb(spec.gridSyncUs);
    hasher.absorb(spec.barrierUs);
    hasher.absorb(spec.streamDispatchUs);
    hasher.absorb(spec.streamContentionPerStream);
    hasher.absorb(spec.taskDequeueUs);
    hasher.absorb(spec.taskEventSignalUs);
    hasher.absorb(spec.taskEventWaitUs);
    hasher.absorb(spec.taskQueuePollUs);
    return hasher.finish();
}

} // namespace souffle
