#pragma once

/**
 * @file
 * Kernel-grain timing simulator for the analytic A100 model.
 *
 * The simulator charges each kernel stage with a roofline time:
 * max(compute time across pipes, DRAM time for its global traffic),
 * plus launch overheads per kernel, grid.sync() costs per
 * synchronization, and wave quantization when a kernel's grid exceeds
 * one resident wave. Loads marked `overlapped` (the cross-TE pipeline
 * optimization of Sec. 6.5) are charged against the *previous* stage's
 * compute time instead of their own stage's memory time. Cached loads
 * (the tensor-reuse optimization) cost shared-memory bandwidth, which
 * is modeled as free at this granularity, and crucially do not count
 * as global traffic.
 *
 * It also produces the Nsight-Compute-style counters the paper
 * reports: kernel launch counts, global bytes loaded/stored, and
 * LSU/FMA pipe utilization.
 */

#include <string>
#include <vector>

#include "gpu/device.h"
#include "kernel/kernel_ir.h"

namespace souffle {

/** Aggregate performance counters for one simulated run. */
struct SimCounters
{
    int kernelLaunches = 0;
    int gridSyncs = 0;
    double bytesLoaded = 0.0;
    double bytesStored = 0.0;
    double bytesAtomic = 0.0;
    /** Bytes served from the on-chip reuse cache (not global). */
    double bytesCached = 0.0;

    /** Busy time per unit (us). */
    double lsuBusyUs = 0.0;
    double tensorCoreBusyUs = 0.0;
    double fmaBusyUs = 0.0;
    double aluBusyUs = 0.0;

    double totalGlobalBytes() const { return bytesLoaded + bytesStored; }

    /** Field-wise accumulation: used by the simulator to fold one
     *  kernel's counters into a run, and by the serving simulator to
     *  aggregate counters across dispatched batches. */
    SimCounters &operator+=(const SimCounters &other);
};

/** Per-kernel timing breakdown. */
struct KernelTiming
{
    std::string name;
    double timeUs = 0.0;
    double launchUs = 0.0;
    double globalBytes = 0.0;
    bool computeBound = false;
    /** Busy time of the compute pipes across all stages (us). */
    double computeBusyUs = 0.0;
    /** DRAM busy time across all stages (us). */
    double memBusyUs = 0.0;
};

/** Scheduler statistics of one persistent-megakernel run. */
struct TaskSimStats
{
    /** Tasks (stages) executed by the on-device scheduler. */
    int tasks = 0;
    /** Shard executions across all tasks. */
    int shards = 0;
    /** Shards stolen from another SM's queue (ring order). */
    int steals = 0;
    /** Empty-queue poll rounds charged to waking SMs. */
    int polls = 0;
    /** Dependence events signaled / waited on. */
    int eventSignals = 0;
    int eventWaits = 0;
    /** Total charged scheduler time (dequeue + events + polls, us). */
    double schedulerOverheadUs = 0.0;
    /** Persistent-kernel execution time (excludes the launch, us). */
    double makespanUs = 0.0;
};

/** One shard execution, for the per-SM chrome-trace lanes. */
struct TaskTraceEvent
{
    int sm = 0;
    int task = 0;
    int shard = 0;
    double startUs = 0.0;
    double endUs = 0.0;
    /** True when the shard was stolen from another SM's queue. */
    bool stolen = false;
    /** Own-queue depth right after this shard was dequeued. */
    int queueDepth = 0;
    std::string name;
};

/** Simulation knobs (megakernel mode only). */
struct SimOptions
{
    /** Record per-shard TaskTraceEvents (costly; trace export only). */
    bool captureTaskTimeline = false;
};

/** Result of simulating a compiled module. */
struct SimResult
{
    double totalUs = 0.0;
    SimCounters counters;
    std::vector<KernelTiming> kernels;
    /** Filled in megakernel mode (taskStats.tasks > 0). */
    TaskSimStats taskStats;
    /** Per-shard timeline (only with SimOptions::captureTaskTimeline). */
    std::vector<TaskTraceEvent> taskTimeline;

    double lsuUtilization() const
    {
        return totalUs > 0 ? counters.lsuBusyUs / totalUs : 0.0;
    }
    double fmaUtilization() const
    {
        return totalUs > 0
                   ? (counters.fmaBusyUs + counters.aluBusyUs) / totalUs
                   : 0.0;
    }
    double tensorCoreUtilization() const
    {
        return totalUs > 0 ? counters.tensorCoreBusyUs / totalUs : 0.0;
    }

    std::string toString() const;
};

/**
 * Simulate @p module on @p device. Modules with a task graph
 * (CompiledModule::megakernel) run in the deterministic per-SM
 * scheduler mode: per-SM FIFO work queues with ring-order stealing,
 * occupancy-limited residency, and charged dequeue/event/poll
 * overheads; everything else takes the flat per-kernel roofline path.
 */
SimResult simulate(const CompiledModule &module, const DeviceSpec &device);
SimResult simulate(const CompiledModule &module, const DeviceSpec &device,
                   const SimOptions &options);

} // namespace souffle
