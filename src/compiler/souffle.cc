#include "compiler/souffle.h"

#include <chrono>
#include <unordered_set>

#include "common/logging.h"
#include "gpu/sim.h"
#include "kernel/pipeline_opt.h"
#include "kernel/reuse_opt.h"
#include "sched/schedule.h"
#include "transform/horizontal.h"
#include "transform/partition.h"
#include "transform/vertical.h"

namespace souffle {

namespace {

/** Epilogue-fusion plan shared by Souffle V0..V2 and the Ansor row. */
ModulePlan
epilogueFusionPlan(const TeProgram &program)
{
    ModulePlan plan;
    KernelPlan current;
    std::unordered_set<TensorId> produced;

    auto reads_aligned = [&](const TensorExpr &te) {
        std::vector<ReadAccess> reads;
        te.body->collectReads(reads);
        for (const ReadAccess &access : reads) {
            const TensorId in = te.inputs[access.inputSlot];
            if (!produced.count(in))
                continue;
            if (!access.flat && access.map->isIdentity())
                continue;
            // TVM fuses injective chains freely; only reads of
            // in-kernel reduction outputs require identity alignment.
            const int producer = program.tensor(in).producer;
            if (producer >= 0 && !program.te(producer).hasReduce())
                continue;
            return false;
        }
        return true;
    };

    auto close = [&]() {
        if (!current.stages.empty())
            plan.kernels.push_back(std::move(current));
        current = KernelPlan{};
        produced.clear();
    };

    for (const auto &te : program.tes()) {
        const bool joinable = !current.stages.empty() && !te.hasReduce()
                              && reads_aligned(te);
        if (!joinable)
            close();
        if (current.stages.empty()) {
            current.name = te.name;
            current.stages.push_back(StagePlan{});
        }
        current.stages[0].tes.push_back(te.id);
        produced.insert(te.output);
    }
    close();
    return plan;
}

/**
 * Two-phase reduction handling (Sec. 6.3): inside a multi-stage
 * kernel, reductions whose consumers all live in the same kernel
 * reduce per-block and combine partial results with atomicAdd; only
 * the partial result touches global memory.
 */
void
applyTwoPhaseReduction(CompiledModule &module, const TeProgram &program,
                       const GlobalAnalysis &analysis)
{
    for (auto &kernel : module.kernels) {
        if (kernel.stages.size() < 2)
            continue;
        std::unordered_set<int> kernel_tes;
        for (const auto &stage : kernel.stages)
            kernel_tes.insert(stage.teIds.begin(), stage.teIds.end());
        for (auto &stage : kernel.stages) {
            for (auto &instr : stage.instrs) {
                if (instr.kind != InstrKind::kStoreGlobal
                    || instr.tensor < 0)
                    continue;
                const int producer =
                    program.tensor(instr.tensor).producer;
                if (producer < 0 || !program.te(producer).hasReduce())
                    continue;
                // Contractions reduce block-locally inside their own
                // k-loop; only memory-intensive reductions (whose rows
                // are shared across blocks under a propagated
                // schedule) need the atomic combine.
                if (analysis.teInfo(producer).computeIntensive)
                    continue;
                bool internal = program.tensor(instr.tensor).role
                                != TensorRole::kOutput;
                for (int consumer : analysis.consumers(instr.tensor)) {
                    if (!kernel_tes.count(consumer)) {
                        internal = false;
                        break;
                    }
                }
                if (internal)
                    instr.kind = InstrKind::kAtomicAdd;
            }
        }
    }
}

} // namespace

ModulePlan
ansorStylePlan(const Graph &graph, const LoweredModel &lowered,
               const GlobalAnalysis &analysis)
{
    (void)graph;
    (void)analysis;
    return epilogueFusionPlan(lowered.program);
}

Compiled
compileSouffle(const Graph &graph, const SouffleOptions &options)
{
    const auto start = std::chrono::steady_clock::now();

    Compiled result;
    result.name = "Souffle(V"
                  + std::to_string(static_cast<int>(options.level))
                  + ")";

    // 1. TE lowering.
    LoweredModel lowered = lowerToTe(graph);
    result.program = std::move(lowered.program);

    // 2-4. Global analysis feeds the semantic-preserving transforms.
    if (options.level >= SouffleLevel::kV1) {
        const HorizontalStats h =
            horizontalTransform(result.program, options.horizontalCap);
        result.horizontalGroups = h.groups;
    }
    if (options.level >= SouffleLevel::kV2) {
        const VerticalStats v = verticalTransform(result.program);
        result.verticalMerges = v.merged;
    }

    // 5. Scheduling (Ansor stand-in) on the transformed program.
    const GlobalAnalysis analysis(result.program,
                                  options.intensityThreshold);
    AutoScheduler scheduler(result.program, analysis, options.device,
                            options.schedulerMode);
    const std::vector<Schedule> schedules = scheduler.scheduleAll();

    ModulePlan plan;
    if (options.level >= SouffleLevel::kV3) {
        // Resource-aware partitioning: one kernel per subprogram,
        // grid-sync stages inside.
        const PartitionResult partition = partitionProgram(
            result.program, analysis, schedules, options.device);
        result.subprograms =
            static_cast<int>(partition.subprograms.size());
        int index = 0;
        for (const auto &subprogram : partition.subprograms) {
            KernelPlan kernel;
            kernel.name = "subprogram_" + std::to_string(index++);
            kernel.stages =
                groupStages(result.program, analysis, subprogram.tes);
            plan.kernels.push_back(std::move(kernel));
        }
    } else {
        // V0..V2: Souffle's code generation without global
        // synchronization -- every register-level stage becomes its
        // own kernel (launch-separated instead of grid.sync()ed).
        std::vector<int> all_tes(result.program.numTes());
        for (int i = 0; i < result.program.numTes(); ++i)
            all_tes[i] = i;
        const std::vector<StagePlan> stages =
            groupStages(result.program, analysis, all_tes);
        int index = 0;
        for (const StagePlan &stage : stages) {
            KernelPlan kernel;
            kernel.name = "stage_" + std::to_string(index++);
            kernel.stages.push_back(stage);
            plan.kernels.push_back(std::move(kernel));
        }
        result.subprograms = static_cast<int>(plan.kernels.size());
    }

    // 6. Merge schedules into kernels.
    result.module = buildModule(result.program, analysis, schedules,
                                plan, options.device, result.name);
    if (options.level >= SouffleLevel::kV3)
        applyTwoPhaseReduction(result.module, result.program, analysis);

    // 7. Subprogram-level optimizations.
    if (options.level >= SouffleLevel::kV4) {
        const PipelineStats p =
            pipelineOptimize(result.module, result.program);
        result.loadsOverlapped = p.loadsOverlapped;
        const ReuseStats r = reuseOptimize(result.module, result.program,
                                           options.device);
        result.loadsCached = r.loadsCached;
    }

    // 8. Optional adaptive fusion (the Sec. 9 "Slowdown" remedy):
    // keep a subprogram fused only when the cost model says the
    // grid-sync mega-kernel actually beats per-stage launches.
    if (options.adaptiveFusion && options.level >= SouffleLevel::kV3) {
        CompiledModule adapted;
        adapted.compilerName = result.module.compilerName;
        for (size_t k = 0; k < result.module.kernels.size(); ++k) {
            Kernel &merged = result.module.kernels[k];
            if (merged.stages.size() < 2) {
                adapted.kernels.push_back(std::move(merged));
                continue;
            }
            CompiledModule merged_only;
            merged_only.kernels.push_back(merged);
            const double merged_us =
                simulate(merged_only, options.device).totalUs;

            CompiledModule split;
            for (size_t s = 0; s < plan.kernels[k].stages.size();
                 ++s) {
                KernelPlan stage_plan;
                stage_plan.name = plan.kernels[k].name + "_s"
                                  + std::to_string(s);
                stage_plan.stages.push_back(
                    plan.kernels[k].stages[s]);
                split.kernels.push_back(
                    buildKernel(result.program, analysis, schedules,
                                stage_plan, options.device));
            }
            const double split_us =
                simulate(split, options.device).totalUs;

            if (split_us < merged_us) {
                ++result.adaptiveSplits;
                for (auto &kernel : split.kernels)
                    adapted.kernels.push_back(std::move(kernel));
            } else {
                adapted.kernels.push_back(std::move(merged));
            }
        }
        result.module = std::move(adapted);
    }

    const auto end = std::chrono::steady_clock::now();
    result.compileTimeMs =
        std::chrono::duration<double, std::milli>(end - start).count();
    return result;
}

} // namespace souffle
