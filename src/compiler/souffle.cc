#include "compiler/souffle.h"

#include <chrono>
#include <unordered_set>

#include "analysis/verify_plan.h"
#include "codegen/codegen_pass.h"
#include "graph/lowering_pass.h"
#include "kernel/kernel_passes.h"
#include "lint/lint.h"
#include "sched/schedule_pass.h"
#include "te/fingerprint.h"
#include "te/simplify_pass.h"
#include "transform/megakernel.h"
#include "transform/sync_elim.h"
#include "transform/transform_passes.h"

namespace souffle {

namespace {

/** Epilogue-fusion plan shared by Souffle V0..V2 and the Ansor row. */
ModulePlan
epilogueFusionPlan(const TeProgram &program)
{
    ModulePlan plan;
    KernelPlan current;
    std::unordered_set<TensorId> produced;

    auto reads_aligned = [&](const TensorExpr &te) {
        std::vector<ReadAccess> reads;
        te.body->collectReads(reads);
        for (const ReadAccess &access : reads) {
            const TensorId in = te.inputs[access.inputSlot];
            if (!produced.count(in))
                continue;
            if (!access.flat && access.map->isIdentity())
                continue;
            // TVM fuses injective chains freely; only reads of
            // in-kernel reduction outputs require identity alignment.
            const int producer = program.tensor(in).producer;
            if (producer >= 0 && !program.te(producer).hasReduce())
                continue;
            return false;
        }
        return true;
    };

    auto close = [&]() {
        if (!current.stages.empty())
            plan.kernels.push_back(std::move(current));
        current = KernelPlan{};
        produced.clear();
    };

    for (const auto &te : program.tes()) {
        const bool joinable = !current.stages.empty() && !te.hasReduce()
                              && reads_aligned(te);
        if (!joinable)
            close();
        if (current.stages.empty()) {
            current.name = te.name;
            current.stages.push_back(StagePlan{});
        }
        current.stages[0].tes.push_back(te.id);
        produced.insert(te.output);
    }
    close();
    return plan;
}

} // namespace

ModulePlan
ansorStylePlan(const Graph &graph, const LoweredModel &lowered,
               const GlobalAnalysis &analysis)
{
    (void)graph;
    (void)analysis;
    return epilogueFusionPlan(lowered.program);
}

PassManager
soufflePipeline(const SouffleOptions &options)
{
    PassManager pipeline(
        "souffle-v" + std::to_string(static_cast<int>(options.level)));

    // 1. TE lowering, then algebraic simplification so the analysis,
    // transforms, and scheduler all see a canonical minimal program.
    pipeline.add<LowerToTePass>();
    if (!options.noSimplify)
        pipeline.add<SimplifyPass>();

    // 2-4. Global analysis feeds the semantic-preserving transforms.
    if (options.level >= SouffleLevel::kV1)
        pipeline.add<HorizontalTransformPass>();
    if (options.level >= SouffleLevel::kV2)
        pipeline.add<VerticalTransformPass>();

    // 5. Scheduling (Ansor stand-in) on the transformed program, then
    //    either resource-aware partitioning (V3+: one kernel per
    //    subprogram, grid-sync stages inside) or launch-separated
    //    per-stage kernels (V0..V2).
    pipeline.add<SchedulePass>();
    if (options.level >= SouffleLevel::kV3)
        pipeline.add<PartitionPass>();
    else
        pipeline.add<StageKernelsPass>();

    // 6. Merge schedules into kernels.
    pipeline.add<BuildModulePass>();
    if (options.level >= SouffleLevel::kV3)
        pipeline.add<TwoPhaseReductionPass>();

    // 7. Subprogram-level optimizations, then redundant-sync
    // elimination: the reuse pass appends a spill barrier to every
    // stage with evictions, and most of those are immediately
    // subsumed by the next stage's grid.sync() — the dataflow
    // analysis deletes exactly the provably redundant fences.
    if (options.level >= SouffleLevel::kV4) {
        pipeline.add<PipelineOptimizePass>();
        pipeline.add<ReuseOptimizePass>();
        pipeline.add<SyncElimPass>();
    }

    // 8. Optional adaptive fusion (the Sec. 9 "Slowdown" remedy):
    // keep a subprogram fused only when the cost model says the
    // grid-sync mega-kernel actually beats per-stage launches.
    if (options.adaptiveFusion && options.level >= SouffleLevel::kV3)
        pipeline.add<AdaptiveFusionPass>();

    // 8b. Persistent megakernel (V5): the whole module becomes one
    // resident kernel draining a task graph, with grid-sync fallback
    // when residency is infeasible or the scheduler overheads eat the
    // launch/sync savings. Runs before codegen so the backends see
    // the final stage structure and the task graph.
    if (options.level >= SouffleLevel::kV5)
        pipeline.add<MegakernelPass>();

    // 9. Code generation: emit module source with the selected
    // backend (options.backend; CodeGenBackendRegistry name).
    pipeline.add<CodegenPass>();

    // 10. Strict mode: the full souffle-lint catalogue over the final
    // artifacts, then the memory-plan soundness proof; error-severity
    // findings fail the compile.
    if (options.strictLint) {
        pipeline.add<LintPass>();
        pipeline.add<VerifyPlanPass>();
    }

    return pipeline;
}

Compiled
compileWithPipeline(const PassManager &pipeline, const Graph &graph,
                    const SouffleOptions &options,
                    const std::string &name)
{
    const auto start = std::chrono::steady_clock::now();

    CompileContext ctx(graph, options);
    ctx.result.name =
        name.empty()
            ? "Souffle(V"
                  + std::to_string(static_cast<int>(options.level))
                  + ")"
            : name;
    pipeline.run(ctx);
    Compiled result = ctx.take();
    result.programHash = programFingerprint(result.program);

    const auto end = std::chrono::steady_clock::now();
    result.compileTimeMs =
        std::chrono::duration<double, std::milli>(end - start).count();
    return result;
}

Compiled
compileSouffle(const Graph &graph, const SouffleOptions &options)
{
    return compileWithPipeline(soufflePipeline(options), graph, options);
}

} // namespace souffle
