#include "compiler/pass_manager.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "transform/partition.h"

namespace souffle {

void
PassManager::runTimed(Pass &pass, CompileContext &ctx)
{
    ctx.stats.passes.push_back(PassTiming{pass.name(), 0.0, {}});
    // The entry pointer stays valid until the next push_back, which
    // only happens after this pass returns.
    ctx.currentTiming = &ctx.stats.passes.back();
    const auto start = std::chrono::steady_clock::now();
    try {
        pass.run(ctx);
    } catch (...) {
        ctx.currentTiming = nullptr;
        throw;
    }
    const auto end = std::chrono::steady_clock::now();
    ctx.stats.passes.back().wallMs =
        std::chrono::duration<double, std::milli>(end - start).count();
    ctx.currentTiming = nullptr;
}

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    SOUFFLE_CHECK(pass != nullptr, "null pass registered");
    passes.push_back(std::move(pass));
    return *this;
}

void
PassManager::run(CompileContext &ctx) const
{
    IrVerifier verifier;
    for (const auto &pass : passes) {
        runTimed(*pass, ctx);
        if (pass->invalidatesAnalysis())
            ctx.invalidateAnalysis();
        if (verifyBetween)
            runTimed(verifier, ctx);
    }
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    names.reserve(passes.size());
    for (const auto &pass : passes)
        names.push_back(pass->name());
    return names;
}

std::string
PassManager::toString() const
{
    std::string out = pipelineName + ":\n";
    int index = 1;
    for (const auto &pass : passes) {
        out += "  " + std::to_string(index++) + ". " + pass->name();
        if (pass->invalidatesAnalysis())
            out += "  [invalidates analysis]";
        out += "\n";
    }
    if (verifyBetween)
        out += "  (IrVerifier interleaved after every pass)\n";
    return out;
}

void
verifyTeProgram(const TeProgram &program)
{
    const int num_tes = program.numTes();
    const int num_tensors = program.numTensors();
    for (int i = 0; i < num_tes; ++i) {
        const TensorExpr &te = program.te(i);
        SOUFFLE_REQUIRE(te.id == i, "IR verifier: TE id " << te.id
                                        << " at index " << i);
        SOUFFLE_REQUIRE(te.output >= 0 && te.output < num_tensors,
                        "IR verifier: TE '" << te.name
                                            << "' output out of range");
        SOUFFLE_REQUIRE(program.tensor(te.output).producer == i,
                        "IR verifier: TE '"
                            << te.name << "' producer link broken");
        for (TensorId in : te.inputs) {
            SOUFFLE_REQUIRE(in >= 0 && in < num_tensors,
                            "IR verifier: TE '"
                                << te.name << "' input out of range");
            const int producer = program.tensor(in).producer;
            SOUFFLE_REQUIRE(
                producer < i,
                "IR verifier: dependence cycle (TE '"
                    << te.name << "' reads tensor '"
                    << program.tensor(in).name << "' produced by TE "
                    << producer
                    << " at or after it; the TE dependence graph must "
                       "be acyclic/topologically ordered)");
        }
        std::vector<ReadAccess> reads;
        te.body->collectReads(reads);
        for (const ReadAccess &access : reads) {
            SOUFFLE_REQUIRE(
                access.inputSlot >= 0
                    && access.inputSlot
                           < static_cast<int>(te.inputs.size()),
                "IR verifier: TE '" << te.name
                                    << "' reads undeclared slot "
                                    << access.inputSlot);
            SOUFFLE_REQUIRE(access.map->inDims() == te.iterRank(),
                            "IR verifier: TE '"
                                << te.name
                                << "' read map in-rank mismatch");
        }
    }
}

void
IrVerifier::run(CompileContext &ctx)
{
    const TeProgram &program = ctx.program();
    verifyTeProgram(program);

    if (!ctx.schedules.empty()) {
        SOUFFLE_REQUIRE(static_cast<int>(ctx.schedules.size())
                            == program.numTes(),
                        "IR verifier: " << ctx.schedules.size()
                                        << " schedules for "
                                        << program.numTes() << " TEs");
        for (int i = 0; i < program.numTes(); ++i) {
            const Schedule &sched = ctx.schedules[i];
            SOUFFLE_REQUIRE(sched.teId == i,
                            "IR verifier: schedule " << i
                                                     << " labels TE "
                                                     << sched.teId);
            SOUFFLE_REQUIRE(sched.threadsPerBlock > 0
                                && sched.numBlocks > 0,
                            "IR verifier: degenerate launch dims for "
                            "TE "
                                << i);
        }
    }

    if (!ctx.plan.kernels.empty()) {
        // Every TE must be scheduled before the merge phase plans
        // kernels around the schedules' resource envelopes.
        SOUFFLE_REQUIRE(static_cast<int>(ctx.schedules.size())
                            == program.numTes(),
                        "IR verifier: kernel plan exists but only "
                            << ctx.schedules.size() << " of "
                            << program.numTes()
                            << " TEs are scheduled");
        const std::string violation =
            describePlanCoverageViolation(program, ctx.plan);
        SOUFFLE_REQUIRE(violation.empty(),
                        "IR verifier: " << violation);
        for (const KernelPlan &kernel : ctx.plan.kernels) {
            if (kernel.stages.size() < 2)
                continue;
            // Multi-stage kernels synchronize with grid.sync(), so
            // the whole subprogram must fit one cooperative wave.
            std::vector<int> tes;
            for (const StagePlan &stage : kernel.stages)
                tes.insert(tes.end(), stage.tes.begin(),
                           stage.tes.end());
            SOUFFLE_REQUIRE(
                subprogramFitsDevice(tes, ctx.schedules,
                                     ctx.options.device),
                "IR verifier: grid-sync kernel '"
                    << kernel.name
                    << "' exceeds the cooperative-wave resource cap");
        }
    }

    if (!ctx.result.module.kernels.empty()) {
        std::vector<int> covered;
        for (const Kernel &kernel : ctx.result.module.kernels) {
            for (const KernelStage &stage : kernel.stages) {
                SOUFFLE_REQUIRE(!stage.teIds.empty(),
                                "IR verifier: empty stage in kernel '"
                                    << kernel.name << "'");
                covered.insert(covered.end(), stage.teIds.begin(),
                               stage.teIds.end());
            }
        }
        std::sort(covered.begin(), covered.end());
        SOUFFLE_REQUIRE(static_cast<int>(covered.size())
                            == program.numTes(),
                        "IR verifier: module covers "
                            << covered.size() << " TEs, program has "
                            << program.numTes());
        for (int i = 0; i < static_cast<int>(covered.size()); ++i) {
            SOUFFLE_REQUIRE(covered[i] == i,
                            "IR verifier: module TE coverage is not a "
                            "bijection");
        }
    }
}

} // namespace souffle
