#include "compiler/pass_manager.h"

#include <algorithm>
#include <chrono>
#include <ctime>

#include "common/artifact_cache.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "transform/partition.h"

namespace souffle {

namespace {

/** Process CPU time in milliseconds (all threads of the process). */
double
processCpuMs()
{
    timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec) * 1e3
           + static_cast<double>(ts.tv_nsec) * 1e-6;
}

} // namespace

void
PassManager::runTimed(Pass &pass, CompileContext &ctx)
{
    ctx.stats.passes.push_back(PassTiming{pass.name(), 0.0, 0.0, {}});
    // The entry pointer stays valid until the next push_back, which
    // only happens after this pass returns.
    ctx.currentTiming = &ctx.stats.passes.back();
    // Snapshot artifact-cache counters so each pass's timing entry can
    // carry its own hit/miss/byte deltas without the pass cooperating.
    const ArtifactCache *cache = ctx.options.artifactCache.get();
    const ArtifactCacheStats before =
        cache ? cache->stats() : ArtifactCacheStats{};
    const double cpu_start = processCpuMs();
    const auto start = std::chrono::steady_clock::now();
    try {
        pass.run(ctx);
    } catch (...) {
        ctx.currentTiming = nullptr;
        throw;
    }
    const auto end = std::chrono::steady_clock::now();
    const double cpu_end = processCpuMs();
    if (cache) {
        const ArtifactCacheStats &after = cache->stats();
        if (after.hits != before.hits)
            ctx.counter("cacheHits", after.hits - before.hits);
        if (after.misses != before.misses)
            ctx.counter("cacheMisses", after.misses - before.misses);
        if (after.bytesInMemory != before.bytesInMemory)
            ctx.counter("cacheBytes",
                        after.bytesInMemory - before.bytesInMemory);
    }
    ctx.stats.passes.back().wallMs =
        std::chrono::duration<double, std::milli>(end - start).count();
    ctx.stats.passes.back().cpuMs = cpu_end - cpu_start;
    ctx.currentTiming = nullptr;
}

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    SOUFFLE_CHECK(pass != nullptr, "null pass registered");
    passes.push_back(std::move(pass));
    return *this;
}

void
PassManager::run(CompileContext &ctx) const
{
    ctx.stats.jobs = ThreadPool::global().jobs();
    IrVerifier verifier;
    for (const auto &pass : passes) {
        runTimed(*pass, ctx);
        if (pass->invalidatesAnalysis())
            ctx.invalidateAnalysis();
        if (verifyBetween)
            runTimed(verifier, ctx);
    }
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    names.reserve(passes.size());
    for (const auto &pass : passes)
        names.push_back(pass->name());
    return names;
}

std::string
PassManager::toString() const
{
    std::string out = pipelineName + ":\n";
    int index = 1;
    for (const auto &pass : passes) {
        out += "  " + std::to_string(index++) + ". " + pass->name();
        if (pass->invalidatesAnalysis())
            out += "  [invalidates analysis]";
        out += "\n";
    }
    if (verifyBetween)
        out += "  (IrVerifier interleaved after every pass)\n";
    return out;
}

namespace {

constexpr const char *kVerifyRule = "ir-verify";

/** Append one error-severity "ir-verify" diagnostic. */
void
verifyError(LintReport &report, LintLocation location,
            const std::string &message)
{
    report.add(kVerifyRule, Severity::kError, std::move(location),
               message);
}

} // namespace

void
collectTeProgramDiagnostics(const TeProgram &program, LintReport &report)
{
    const int num_tes = program.numTes();
    const int num_tensors = program.numTensors();
    for (int i = 0; i < num_tes; ++i) {
        const TensorExpr &te = program.te(i);
        LintLocation loc;
        loc.teId = i;
        if (te.id != i) {
            verifyError(report, loc,
                        "TE id " + std::to_string(te.id)
                            + " at index " + std::to_string(i));
        }
        if (te.output < 0 || te.output >= num_tensors) {
            verifyError(report, loc,
                        "TE '" + te.name + "' output out of range");
        } else if (program.tensor(te.output).producer != i) {
            verifyError(report, loc,
                        "TE '" + te.name + "' producer link broken");
        }
        bool inputs_in_range = true;
        for (TensorId in : te.inputs) {
            if (in < 0 || in >= num_tensors) {
                verifyError(report, loc,
                            "TE '" + te.name + "' input out of range");
                inputs_in_range = false;
                continue;
            }
            const int producer = program.tensor(in).producer;
            if (producer >= i) {
                verifyError(
                    report, loc,
                    "dependence cycle (TE '" + te.name
                        + "' reads tensor '" + program.tensor(in).name
                        + "' produced by TE "
                        + std::to_string(producer)
                        + " at or after it; the TE dependence graph "
                          "must be acyclic/topologically ordered)");
            }
        }
        if (!inputs_in_range)
            continue;
        std::vector<ReadAccess> reads;
        te.body->collectReads(reads);
        for (const ReadAccess &access : reads) {
            if (access.inputSlot < 0
                || access.inputSlot
                       >= static_cast<int>(te.inputs.size())) {
                verifyError(report, loc,
                            "TE '" + te.name
                                + "' reads undeclared slot "
                                + std::to_string(access.inputSlot));
                continue;
            }
            if (access.map->inDims() != te.iterRank()) {
                verifyError(report, loc,
                            "TE '" + te.name
                                + "' read map in-rank mismatch");
            }
        }
    }
}

LintReport
IrVerifier::collect(CompileContext &ctx) const
{
    LintReport report;
    const TeProgram &program = ctx.program();
    collectTeProgramDiagnostics(program, report);

    if (!ctx.schedules.empty()) {
        if (static_cast<int>(ctx.schedules.size())
            != program.numTes()) {
            verifyError(report, LintLocation{},
                        std::to_string(ctx.schedules.size())
                            + " schedules for "
                            + std::to_string(program.numTes())
                            + " TEs");
        } else {
            for (int i = 0; i < program.numTes(); ++i) {
                const Schedule &sched = ctx.schedules[i];
                LintLocation loc;
                loc.teId = i;
                if (sched.teId != i) {
                    verifyError(report, loc,
                                "schedule " + std::to_string(i)
                                    + " labels TE "
                                    + std::to_string(sched.teId));
                }
                if (sched.threadsPerBlock <= 0 || sched.numBlocks <= 0) {
                    verifyError(report, loc,
                                "degenerate launch dims for TE "
                                    + std::to_string(i));
                }
            }
        }
    }

    if (!ctx.plan.kernels.empty()) {
        // Every TE must be scheduled before the merge phase plans
        // kernels around the schedules' resource envelopes.
        if (static_cast<int>(ctx.schedules.size())
            != program.numTes()) {
            verifyError(report, LintLocation{},
                        "kernel plan exists but only "
                            + std::to_string(ctx.schedules.size())
                            + " of " + std::to_string(program.numTes())
                            + " TEs are scheduled");
        } else {
            const std::string violation =
                describePlanCoverageViolation(program, ctx.plan);
            if (!violation.empty())
                verifyError(report, LintLocation{}, violation);
            for (const KernelPlan &kernel : ctx.plan.kernels) {
                if (kernel.stages.size() < 2)
                    continue;
                // Multi-stage kernels synchronize with grid.sync(),
                // so the whole subprogram must fit one cooperative
                // wave.
                std::vector<int> tes;
                for (const StagePlan &stage : kernel.stages)
                    tes.insert(tes.end(), stage.tes.begin(),
                               stage.tes.end());
                if (!subprogramFitsDevice(tes, ctx.schedules,
                                          ctx.options.device)) {
                    LintLocation loc;
                    loc.kernel = kernel.name;
                    verifyError(report, loc,
                                "grid-sync kernel '" + kernel.name
                                    + "' exceeds the cooperative-wave "
                                      "resource cap");
                }
            }
        }
    }

    if (!ctx.result.module.kernels.empty()) {
        std::vector<int> covered;
        for (const Kernel &kernel : ctx.result.module.kernels) {
            for (size_t s = 0; s < kernel.stages.size(); ++s) {
                const KernelStage &stage = kernel.stages[s];
                if (stage.teIds.empty()) {
                    LintLocation loc;
                    loc.kernel = kernel.name;
                    loc.stage = static_cast<int>(s);
                    verifyError(report, loc,
                                "empty stage in kernel '"
                                    + kernel.name + "'");
                }
                covered.insert(covered.end(), stage.teIds.begin(),
                               stage.teIds.end());
            }
        }
        std::sort(covered.begin(), covered.end());
        if (static_cast<int>(covered.size()) != program.numTes()) {
            verifyError(report, LintLocation{},
                        "module covers "
                            + std::to_string(covered.size())
                            + " TEs, program has "
                            + std::to_string(program.numTes()));
        } else {
            for (int i = 0; i < static_cast<int>(covered.size());
                 ++i) {
                if (covered[i] != i) {
                    verifyError(report, LintLocation{},
                                "module TE coverage is not a "
                                "bijection");
                    break;
                }
            }
        }
    }
    return report;
}

void
verifyTeProgram(const TeProgram &program)
{
    LintReport report;
    collectTeProgramDiagnostics(program, report);
    SOUFFLE_REQUIRE(report.empty(),
                    "IR verifier:\n" << report.renderText());
}

void
IrVerifier::run(CompileContext &ctx)
{
    const LintReport report = collect(ctx);
    // Every violation is reported in one exception so a broken
    // pipeline surfaces all of its damage, not just the first hit.
    SOUFFLE_REQUIRE(report.empty(),
                    "IR verifier:\n" << report.renderText());
}

} // namespace souffle
