#pragma once

/**
 * @file
 * The Souffle compiler driver: the paper's full pipeline, expressed
 * as a PassManager registration.
 *
 *  1. TE lowering (Sec. 4)                 -- graph/lowering_pass
 *  2. Global analysis (Sec. 5)             -- recomputed lazily by the
 *     CompileContext whenever a pass staled it
 *  3. Horizontal transformation (Sec. 6.1) -- transform/transform_passes
 *  4. Vertical transformation (Sec. 6.2)   -- transform/transform_passes
 *  5. Scheduling + resource-aware partitioning (Sec. 5.4/6.3)
 *     -- sched/schedule_pass + transform/transform_passes
 *  6. Schedule merging into per-subprogram kernels with grid sync and
 *     two-phase (atomicAdd) reductions (Sec. 6.4) -- kernel/kernel_passes
 *  7. Subprogram-level optimization: cross-TE instruction pipelining
 *     and LRU tensor reuse (Sec. 6.5)             -- kernel/kernel_passes
 *
 * The ablation levels match Table 4 of the paper and are pure
 * pipeline factories: a level is nothing but a pass list.
 *   V0 = TVM+Ansor-style per-op kernels (no Souffle optimizations)
 *   V1 = V0 + horizontal transformation
 *   V2 = V1 + vertical transformation
 *   V3 = V2 + global synchronization (subprogram mega-kernels)
 *   V4 = V3 + subprogram-level optimizations (pipelining + reuse)
 */

#include "compiler/compiler.h"
#include "compiler/options.h"
#include "compiler/pass_manager.h"
#include "kernel/build.h"
#include "sched/schedule.h"

namespace souffle {

/**
 * Build the pass pipeline @p options expands to. The returned
 * pipeline can be printed (`toString`) or run on a CompileContext
 * whose options match.
 */
PassManager soufflePipeline(const SouffleOptions &options);

/** Compile @p graph with Souffle at the requested ablation level
 *  (thin wrapper: builds `soufflePipeline(options)` and runs it). */
Compiled compileSouffle(const Graph &graph,
                        const SouffleOptions &options = {});

/**
 * Compile @p graph by running an already-built @p pipeline (which
 * must match @p options). This is the reusable compile entry for
 * callers that compile many graphs under one configuration — the
 * serving simulator's batch-bucket module cache builds the pipeline
 * once per SouffleLevel and runs it per (model, batch) bucket.
 * @p name labels the result; empty derives "Souffle(Vn)".
 */
Compiled compileWithPipeline(const PassManager &pipeline,
                             const Graph &graph,
                             const SouffleOptions &options,
                             const std::string &name = "");

/**
 * The TVM+Ansor-style baseline plan: one kernel per anchor TE with
 * identity-aligned epilogue fusion. Exposed because it is both
 * Souffle's V0 and the Ansor baseline.
 */
ModulePlan ansorStylePlan(const Graph &graph, const LoweredModel &lowered,
                          const GlobalAnalysis &analysis);

} // namespace souffle
