#pragma once

/**
 * @file
 * The Souffle compiler driver: the paper's full pipeline.
 *
 *  1. TE lowering (Sec. 4)                 -- graph/lowering
 *  2. Global analysis (Sec. 5)             -- analysis
 *  3. Horizontal transformation (Sec. 6.1) -- transform/horizontal
 *  4. Vertical transformation (Sec. 6.2)   -- transform/vertical
 *  5. Scheduling + resource-aware partitioning (Sec. 5.4/6.3)
 *  6. Schedule merging into per-subprogram kernels with grid sync and
 *     two-phase (atomicAdd) reductions (Sec. 6.4)
 *  7. Subprogram-level optimization: cross-TE instruction pipelining
 *     and LRU tensor reuse (Sec. 6.5)
 *
 * The ablation levels match Table 4 of the paper:
 *   V0 = TVM+Ansor-style per-op kernels (no Souffle optimizations)
 *   V1 = V0 + horizontal transformation
 *   V2 = V1 + vertical transformation
 *   V3 = V2 + global synchronization (subprogram mega-kernels)
 *   V4 = V3 + subprogram-level optimizations (pipelining + reuse)
 */

#include "compiler/compiler.h"
#include "kernel/build.h"
#include "sched/schedule.h"

namespace souffle {

/** Ablation levels of Table 4. */
enum class SouffleLevel : uint8_t {
    kV0 = 0,
    kV1 = 1,
    kV2 = 2,
    kV3 = 3,
    kV4 = 4,
};

/** Options for the Souffle driver. */
struct SouffleOptions
{
    DeviceSpec device = DeviceSpec::a100();
    SouffleLevel level = SouffleLevel::kV4;
    /** Cap on horizontal merge group size. */
    int horizontalCap = 64;
    /**
     * Cost-model-guided fusion profitability (the remedy the paper
     * sketches in Sec. 9 "Slowdown"): after building each subprogram
     * mega-kernel, compare its simulated time against launching one
     * kernel per stage, and keep whichever is faster. Off by default
     * to preserve the paper's V3/V4 semantics.
     */
    bool adaptiveFusion = false;
    /** Compute/memory classification threshold (paper: 3). */
    double intensityThreshold = kComputeIntensityThreshold;
    /**
     * Schedule-search strategy: kSearch (Ansor stand-in, default) or
     * kRoller (Sec. 8.5's faster constructive optimizer).
     */
    SchedulerMode schedulerMode = SchedulerMode::kSearch;
};

/** Compile @p graph with Souffle at the requested ablation level. */
Compiled compileSouffle(const Graph &graph,
                        const SouffleOptions &options = {});

/**
 * The TVM+Ansor-style baseline plan: one kernel per anchor TE with
 * identity-aligned epilogue fusion. Exposed because it is both
 * Souffle's V0 and the Ansor baseline.
 */
ModulePlan ansorStylePlan(const Graph &graph, const LoweredModel &lowered,
                          const GlobalAnalysis &analysis);

} // namespace souffle
