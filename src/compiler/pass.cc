#include "compiler/pass.h"

#include <algorithm>
#include <cstdio>

namespace souffle {

CompileContext::CompileContext(const Graph &graph, SouffleOptions options)
    : graph(graph), options(std::move(options))
{
}

const GlobalAnalysis &
CompileContext::analysis()
{
    if (!cachedAnalysis) {
        cachedAnalysis = std::make_unique<GlobalAnalysis>(
            lowered.program, options.intensityThreshold);
        ++stats.analysisRuns;
        if (currentTiming) {
            counter("analysisUs",
                    static_cast<int64_t>(
                        cachedAnalysis->constructionMs() * 1000.0));
        }
    }
    return *cachedAnalysis;
}

void
CompileContext::counter(const std::string &name, int64_t value)
{
    if (!currentTiming)
        return;
    currentTiming->counters.push_back(PassCounter{name, value});
}

Compiled
CompileContext::take()
{
    invalidateAnalysis();
    result.program = std::move(lowered.program);
    result.schedules = std::move(schedules);
    result.plan = std::move(plan);
    result.passStats = std::move(stats);
    return std::move(result);
}

double
PassStatistics::totalMs() const
{
    double total = 0.0;
    for (const PassTiming &timing : passes)
        total += timing.wallMs;
    return total;
}

double
PassStatistics::totalCpuMs() const
{
    double total = 0.0;
    for (const PassTiming &timing : passes)
        total += timing.cpuMs;
    return total;
}

double
PassStatistics::passMs(const std::string &pass) const
{
    double total = 0.0;
    for (const PassTiming &timing : passes) {
        if (timing.pass == pass)
            total += timing.wallMs;
    }
    return total;
}

int64_t
PassStatistics::counterTotal(const std::string &name) const
{
    int64_t total = 0;
    for (const PassTiming &timing : passes) {
        for (const PassCounter &counter : timing.counters) {
            if (counter.name == name)
                total += counter.value;
        }
    }
    return total;
}

std::string
PassStatistics::toString() const
{
    size_t width = 4;
    for (const PassTiming &timing : passes)
        width = std::max(width, timing.pass.size());

    std::string out;
    for (const PassTiming &timing : passes) {
        char line[96];
        std::snprintf(line, sizeof(line),
                      "  %10.3f ms wall  %10.3f ms cpu  ",
                      timing.wallMs, timing.cpuMs);
        out += timing.pass;
        out.append(width - timing.pass.size(), ' ');
        out += line;
        bool first = true;
        for (const PassCounter &counter : timing.counters) {
            if (!first)
                out += ", ";
            first = false;
            out += counter.name + "=" + std::to_string(counter.value);
        }
        out += "\n";
    }
    char total[128];
    std::snprintf(total, sizeof(total),
                  "total %.3f ms wall (%.3f ms cpu) over %zu pass "
                  "runs, %d analysis run(s), jobs=%d\n",
                  totalMs(), totalCpuMs(), passes.size(), analysisRuns,
                  jobs);
    out += total;
    return out;
}

} // namespace souffle
