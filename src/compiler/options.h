#pragma once

/**
 * @file
 * Compilation options shared by the pass library and the pipeline
 * factories. Kept separate from `compiler/souffle.h` so that
 * `compiler/pass.h` (which every pass adapter includes) does not pull
 * in the driver-level pipeline factories.
 */

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/analysis.h"
#include "common/hash.h"
#include "gpu/device.h"
#include "sched/schedule.h"

namespace souffle {

class ArtifactCache;

/** Ablation levels of Table 4, plus the persistent-megakernel V5. */
enum class SouffleLevel : uint8_t {
    kV0 = 0,
    kV1 = 1,
    kV2 = 2,
    kV3 = 3,
    kV4 = 4,
    /**
     * V4 plus the megakernel transform: the whole module becomes one
     * persistent kernel draining a task graph on per-SM work queues
     * (transform/megakernel.h), with grid-sync fallback when the
     * feasibility or profitability check fails.
     */
    kV5 = 5,
};

/** Options for the Souffle driver. */
struct SouffleOptions
{
    DeviceSpec device = DeviceSpec::a100();
    SouffleLevel level = SouffleLevel::kV4;
    /** Cap on horizontal merge group size. */
    int horizontalCap = 64;
    /**
     * Cost-model-guided fusion profitability (the remedy the paper
     * sketches in Sec. 9 "Slowdown"): after building each subprogram
     * mega-kernel, compare its simulated time against launching one
     * kernel per stage, and keep whichever is faster. Off by default
     * to preserve the paper's V3/V4 semantics.
     */
    bool adaptiveFusion = false;
    /** Compute/memory classification threshold (paper: 3). */
    double intensityThreshold = kComputeIntensityThreshold;
    /**
     * Strict mode: append a `LintPass` to the pipeline that runs the
     * full souffle-lint rule catalogue over the final artifacts and
     * fails the compile (FatalError) on any error-severity finding
     * (races, out-of-bounds reads, resource-cap violations).
     */
    bool strictLint = false;
    /**
     * Disable the TE algebraic simplifier that normally runs right
     * after lowering (te/simplify.h). Exists for differential
     * testing: simplified and unsimplified programs must be
     * interpreter-bit-identical. No cache-salt impact — schedule and
     * module keys are structural fingerprints, which already differ
     * when simplification changes the program.
     */
    bool noSimplify = false;
    /**
     * Schedule-search strategy: kSearch (Ansor stand-in, default) or
     * kRoller (Sec. 8.5's faster constructive optimizer).
     */
    SchedulerMode schedulerMode = SchedulerMode::kSearch;
    /**
     * Code-generation backend, a CodeGenBackendRegistry name
     * ("cuda" = reviewable CUDA source, the historical default;
     * "c" = executable portable C11, runnable through
     * runtime/native_exec.h). Resolved by the codegen pass; an
     * unknown name fails the compile.
     */
    std::string backend = "cuda";
    /**
     * Content-addressed artifact cache consulted by the scheduling
     * pass (null = caching off). Shared so independent compilations —
     * different models, batch sizes, or ablation levels — reuse each
     * other's schedules; the serving module cache hands one instance
     * to every entry it compiles.
     */
    std::shared_ptr<ArtifactCache> artifactCache;

    /**
     * Salt for schedule-cache keys: exactly the options that steer
     * the schedule search. Deliberately excludes `level` and `device`
     * (the device is keyed separately by fingerprint) so schedules
     * transfer across ablation levels and models.
     */
    std::string
    scheduleCacheSalt() const
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "mode=%d;intensity=%.17g",
                      static_cast<int>(schedulerMode),
                      intensityThreshold);
        return buf;
    }

    /**
     * Salt for module-source cache keys ("module-src" artifacts).
     * Unlike schedules, emitted module text depends on every option
     * that shapes the final kernel structure, so this extends
     * `scheduleCacheSalt()` with the ablation level and adaptive
     * fusion (V3 and V4 share a program hash but differ in module
     * text), plus the backend's behavioral fingerprint so artifacts
     * from different backends coexist under the same program hash.
     */
    std::string
    codegenCacheSalt(const Fingerprint &backend_fp) const
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), ";level=%d;adaptive=%d;be=",
                      static_cast<int>(level),
                      adaptiveFusion ? 1 : 0);
        return scheduleCacheSalt() + buf + backend_fp.toHex();
    }
};

} // namespace souffle
