#include "compiler/cluster.h"

#include <unordered_set>

#include "common/logging.h"

namespace souffle {

namespace {

struct ClusterState
{
    KernelPlan plan;
    bool hasContraction = false;
    bool sealed = false; // library kernel w/o epilogue fusion
    int reductions = 0;
    std::unordered_set<TensorId> produced;

    bool empty() const { return plan.stages.empty(); }

    void
    add(const TensorExpr &te)
    {
        if (plan.stages.empty())
            plan.stages.push_back(StagePlan{});
        plan.stages[0].tes.push_back(te.id);
        produced.insert(te.output);
        if (plan.name.empty())
            plan.name = te.name;
    }
};

bool
readsAligned(const TeProgram &program, const TensorExpr &te,
             const std::unordered_set<TensorId> &produced,
             bool fuse_injective)
{
    std::vector<ReadAccess> reads;
    te.body->collectReads(reads);
    for (const ReadAccess &access : reads) {
        const TensorId in = te.inputs[access.inputSlot];
        if (!produced.count(in))
            continue;
        if (!access.flat && access.map->isIdentity())
            continue;
        if (fuse_injective) {
            // Injective chains fuse freely; reads of reduction
            // outputs must stay identity-aligned (the reduction
            // result only exists block-locally).
            const int producer = program.tensor(in).producer;
            if (producer >= 0 && !program.te(producer).hasReduce())
                continue;
        }
        return false;
    }
    return true;
}

} // namespace

ModulePlan
clusterKernels(const Graph &graph, const LoweredModel &lowered,
               const GlobalAnalysis &analysis, const ClusterRules &rules)
{
    const TeProgram &program = lowered.program;
    ModulePlan result;
    ClusterState current;

    auto close = [&]() {
        if (!current.empty())
            result.kernels.push_back(std::move(current.plan));
        current = ClusterState{};
    };

    for (const auto &te : program.tes()) {
        const TeInfo &info = analysis.teInfo(te.id);
        const bool contraction = te.hasReduce() && info.computeIntensive;

        if (contraction) {
            close();
            const OpKind op_kind =
                graph.op(lowered.teToOp[te.id]).kind;
            const bool is_conv = op_kind == OpKind::kConv2d;
            current.add(te);
            current.hasContraction = true;
            if (rules.libraryContractions) {
                current.plan.library = true;
                current.plan.libraryTimeFactor = rules.libraryFactor;
                current.sealed = !rules.fuseEpilogueIntoContraction;
            } else {
                const double factor = is_conv
                                          ? rules.generatedConvFactor
                                          : rules.generatedMatmulFactor;
                if (factor != 1.0) {
                    current.plan.library = true;
                    current.plan.libraryTimeFactor = factor;
                }
                current.sealed = !rules.fuseEpilogueIntoContraction;
            }
            continue;
        }

        if (te.hasReduce()) {
            const bool joinable =
                !current.empty() && !current.sealed
                && !current.hasContraction
                && rules.fusePrologueIntoReduction
                && current.reductions + 1 <= rules.maxReductionsPerCluster;
            if (!joinable)
                close();
            current.add(te);
            ++current.reductions;
            // A reduction's own consumers need a fresh kernel unless
            // the rule set can fuse through broadcasts (its output is
            // read with a broadcast map); handled below per-consumer.
            continue;
        }

        // One-relies-on-one TE.
        bool joinable = !current.empty() && !current.sealed;
        if (joinable && current.hasContraction)
            joinable = rules.fuseEpilogueIntoContraction;
        if (joinable && !rules.fuseBroadcastReads) {
            joinable = readsAligned(program, te, current.produced,
                                    rules.fuseInjectiveReads);
        }
        if (!joinable)
            close();
        current.add(te);
    }
    close();
    return result;
}

} // namespace souffle
