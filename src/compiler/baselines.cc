/**
 * @file
 * The six baseline compilers of paper Sec. 7.2, each expressed as a
 * fusion rule set over the shared clusterer plus a documented support
 * matrix. Section 8.1 of the paper attributes each baseline's gap to
 * specific missing rules; those are exactly the knobs configured here:
 *
 *  - XLA: loop fusion over element-wise + one reduction per fused
 *    loop; GEMM/conv go to cuBLAS/cuDNN custom-calls that cannot fuse
 *    with anything ("XLA maps computation-intensive operators to a
 *    BLAS library call and cannot merge such operators with others").
 *  - Ansor (TVM): per-op kernels with identity epilogue fusion, no
 *    cross-op analysis.
 *  - TensorRT: hand-tuned library contractions (fastest individual
 *    kernels) with GEMM+bias+activation tactics, element-wise chains
 *    fused, but no compute/memory cross-fusion and no global sync.
 *  - Rammer: horizontal (sibling) fusion via rTasks, but "does not
 *    perform element-wise data dependence analysis or reuse tensor
 *    buffers"; fails on models outside its operator support.
 *  - Apollo: partition-based fusion of memory-intensive chains with
 *    conservative rules (no broadcast fusion, reductions never join),
 *    AKG-generated contraction code slower than hand-tuned libraries;
 *    cannot handle fully-unrolled recurrent graphs.
 *  - IREE: linalg producer-consumer tile-and-fuse (prologue fusion
 *    works) but no GEMM-GEMM or GEMM-softmax fusion and notoriously
 *    slow direct convolutions (paper: 314.8 ms ResNeXt).
 */

#include <chrono>

#include "common/logging.h"
#include "compiler/cluster.h"
#include "compiler/compiler.h"
#include "compiler/souffle.h"
#include "graph/lowering_pass.h"
#include "kernel/kernel_passes.h"
#include "sched/schedule_pass.h"
#include "transform/transform_passes.h"

namespace souffle {

std::string
compilerName(CompilerId id)
{
    switch (id) {
      case CompilerId::kSouffle:
        return "Souffle";
      case CompilerId::kXla:
        return "XLA";
      case CompilerId::kAnsor:
        return "Ansor";
      case CompilerId::kTensorRT:
        return "TensorRT";
      case CompilerId::kRammer:
        return "Rammer";
      case CompilerId::kApollo:
        return "Apollo";
      case CompilerId::kIree:
        return "IREE";
    }
    return "?";
}

namespace {

/** Structural support checks mirroring the paper's "Failed" entries. */
void
checkSupport(CompilerId id, const Graph &graph)
{
    if (id == CompilerId::kRammer) {
        // Rammer v0.4 lacks kernels for swish/SiLU (EfficientNet),
        // high-rank window reshapes (Swin) and wide expert concats
        // (MMoE) -- the three "Failed" cells in Table 3.
        for (const auto &op : graph.ops()) {
            if (op.kind == OpKind::kSilu) {
                throw UnsupportedError(
                    "Rammer: swish/SiLU activation unsupported");
            }
            if (op.kind == OpKind::kReshape && op.attrs.dims.size() >= 5)
                throw UnsupportedError(
                    "Rammer: rank>=5 window reshape unsupported");
            if (op.kind == OpKind::kConcat && op.inputs.size() >= 4)
                throw UnsupportedError(
                    "Rammer: wide expert concat unsupported");
        }
    }
    if (id == CompilerId::kApollo) {
        // Apollo's partition search does not scale to fully-unrolled
        // recurrent graphs (Table 3: Failed on LSTM).
        if (graph.numOps() > 3000) {
            throw UnsupportedError(
                "Apollo: graph too large for partition search ("
                + std::to_string(graph.numOps()) + " ops)");
        }
    }
}

ClusterRules
rulesFor(CompilerId id)
{
    ClusterRules rules;
    switch (id) {
      case CompilerId::kXla:
        rules.libraryContractions = true;
        rules.libraryFactor = 0.92;
        rules.fuseEpilogueIntoContraction = false;
        rules.fuseBroadcastReads = true;
        rules.fusePrologueIntoReduction = true;
        rules.maxReductionsPerCluster = 1;
        break;
      case CompilerId::kTensorRT:
        rules.libraryContractions = true;
        rules.libraryFactor = 0.85;
        rules.fuseEpilogueIntoContraction = true;
        rules.fuseBroadcastReads = true;
        rules.fusePrologueIntoReduction = true;
        rules.maxReductionsPerCluster = 1;
        break;
      case CompilerId::kApollo:
        rules.libraryContractions = false;
        rules.generatedMatmulFactor = 1.4; // AKG vs hand-tuned
        rules.generatedConvFactor = 1.3;
        rules.fuseEpilogueIntoContraction = false;
        rules.fuseBroadcastReads = false;
        rules.fusePrologueIntoReduction = false;
        break;
      case CompilerId::kIree:
        rules.libraryContractions = false;
        rules.generatedMatmulFactor = 1.25;
        rules.generatedConvFactor = 9.0; // direct conv, untuned
        rules.fuseEpilogueIntoContraction = true;
        rules.fuseBroadcastReads = true;
        rules.fusePrologueIntoReduction = true;
        break;
      case CompilerId::kAnsor:
      case CompilerId::kRammer:
        rules.fuseEpilogueIntoContraction = true;
        rules.fuseBroadcastReads = false;
        rules.fuseInjectiveReads = true; // TVM fuses injective chains
        rules.fusePrologueIntoReduction = false;
        break;
      default:
        SOUFFLE_PANIC("rulesFor called for non-baseline compiler");
    }
    return rules;
}

/**
 * Structural support gate, run first so unsupported models reject
 * before any compilation work (mirrors the paper's "Failed" cells).
 */
class SupportCheckPass : public Pass
{
  public:
    explicit SupportCheckPass(CompilerId id) : id(id) {}

    std::string name() const override { return "support-check"; }

    void
    run(CompileContext &ctx) override
    {
        checkSupport(id, ctx.graph);
    }

  private:
    CompilerId id;
};

/**
 * Rule-based kernel clustering: the baseline's documented fusion
 * rules over the shared clusterer. Writes `ctx.plan`.
 */
class ClusterPlanPass : public Pass
{
  public:
    explicit ClusterPlanPass(CompilerId id) : id(id) {}

    std::string name() const override { return "cluster-kernels"; }

    void
    run(CompileContext &ctx) override
    {
        if (id == CompilerId::kRammer && ctx.graph.numOps() == 0) {
            ctx.plan = ModulePlan::unfused(ctx.program());
        } else {
            ctx.plan = clusterKernels(ctx.graph, ctx.lowered,
                                      ctx.analysis(), rulesFor(id));
        }
        ctx.result.subprograms =
            static_cast<int>(ctx.plan.kernels.size());
        ctx.counter("kernels", ctx.result.subprograms);
    }

  private:
    CompilerId id;
};

/** Pipeline registration of one baseline compiler. */
PassManager
baselinePipeline(CompilerId id)
{
    PassManager pipeline("baseline-" + compilerName(id));
    pipeline.add<SupportCheckPass>(id);
    pipeline.add<LowerToTePass>();
    if (id == CompilerId::kRammer) {
        // Rammer's rTask co-scheduling merges independent sibling
        // operators -- model it with the horizontal transformation.
        // teToOp is stale after the rebuild; Rammer generates all its
        // kernels itself (no library factors), so remap everything to
        // a generated-kernel mapping by rebuilding the index as "not a
        // conv" (factors are 1.0 anyway).
        pipeline.add<HorizontalTransformPass>(/*remap_te_to_op=*/true);
    }
    pipeline.add<SchedulePass>();
    pipeline.add<ClusterPlanPass>(id);
    pipeline.add<BuildModulePass>();
    return pipeline;
}

} // namespace

Compiled
compileWith(CompilerId id, const Graph &graph, const DeviceSpec &device)
{
    if (id == CompilerId::kSouffle) {
        SouffleOptions options;
        options.device = device;
        Compiled result = compileSouffle(graph, options);
        result.name = "Souffle";
        result.module.compilerName = "Souffle";
        return result;
    }

    const auto start = std::chrono::steady_clock::now();

    SouffleOptions options;
    options.device = device;
    CompileContext ctx(graph, options);
    ctx.result.name = compilerName(id);
    baselinePipeline(id).run(ctx);
    Compiled result = ctx.take();

    const auto end = std::chrono::steady_clock::now();
    result.compileTimeMs =
        std::chrono::duration<double, std::milli>(end - start).count();
    return result;
}

} // namespace souffle
