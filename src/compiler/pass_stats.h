#pragma once

/**
 * @file
 * Per-pass compile-time statistics.
 *
 * The PassManager records one PassTiming entry, in execution order,
 * for every pass it runs (including interleaved verifier runs).
 * Passes attach named counters to their own entry through
 * `CompileContext::counter`. The report is carried on `Compiled` so
 * benches (`bench_compile_overhead`) and tools can break compilation
 * time down by stage instead of reporting one end-to-end number.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace souffle {

/** One named counter recorded by a pass (e.g. "groups", 7). */
struct PassCounter
{
    std::string name;
    int64_t value = 0;
};

/** Wall-clock time and counters of one executed pass. */
struct PassTiming
{
    std::string pass;
    double wallMs = 0.0;
    /**
     * Process CPU time consumed while the pass ran (all threads).
     * `cpuMs / wallMs` approximates the parallel speedup a pass
     * achieved on the thread pool; for a serial pass the two are
     * equal. Caveat: the counter is process-wide, so concurrent
     * compilations (e.g. parallel serving-bucket compiles) attribute
     * each other's CPU to whichever pass was on the clock.
     */
    double cpuMs = 0.0;
    std::vector<PassCounter> counters;
};

/** Whole-pipeline statistics, in execution order. */
struct PassStatistics
{
    std::vector<PassTiming> passes;
    /** Times GlobalAnalysis was (re)computed during the pipeline. */
    int analysisRuns = 0;
    /** Thread-pool lanes available while the pipeline ran (the
     *  global `--jobs` setting), so per-pass speedup is observable. */
    int jobs = 1;

    /** Sum of all per-pass wall times. */
    double totalMs() const;

    /** Sum of all per-pass CPU times. */
    double totalCpuMs() const;

    /** Sum of wall times of entries named @p pass (0 if absent). */
    double passMs(const std::string &pass) const;

    /** Sum of counter @p name across all passes (0 if absent). */
    int64_t counterTotal(const std::string &name) const;

    /** Aligned per-pass table for logs and benches. */
    std::string toString() const;
};

} // namespace souffle
