#pragma once

/**
 * @file
 * Compiled-artifact store: offline compile → online serve.
 *
 * A compiled artifact is one directory holding everything a server
 * needs to run a model without compiling it: the transformed TE
 * program (semantics), the per-TE schedules and the kernel plan
 * (provenance), the kernel-IR module (what the simulator executes),
 * and the generated backend source. Loading an artifact performs
 * *zero* candidate evaluations — scheduling, planning and codegen all
 * happened offline — and reproduces the compile byte-for-byte: the
 * reloaded module text is identical to the saved one.
 *
 * Layout under a store root:
 *
 *   <root>/<model>-b<batch>-v<level>-<backend>-<deviceFp>/
 *     meta.json       version, identity key, program hash
 *     program.json    TE program (te/serialize.h)
 *     schedules.json  per-TE schedule array (sched/schedule.h)
 *     plan.json       module plan (kernel/serialize.h)
 *     module.json     kernel-IR module (kernel/serialize.h)
 *     module.src      generated backend source, byte-exact
 *
 * The subdirectory name is derived from the identity key (never from
 * an index file), so concurrent saves of *different* keys never race;
 * a re-save of the same key rewrites the same files with identical
 * bytes. Integrity on load: the format version must match, the meta
 * identity must equal the requested key, and the deserialized
 * program's structural fingerprint must equal the recorded program
 * hash — a corrupted or hand-edited artifact is rejected with
 * FatalError instead of served.
 */

#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "compiler/options.h"

namespace souffle {

/** Identity + integrity header of one compiled artifact. */
struct ArtifactMeta
{
    /** Format version (bumped on any layout/schema change).
     *  2: module.json may carry a V5 task graph (module format v2). */
    int version = 2;
    /** Model key: zoo name, "tiny-" + zoo name, or graph name. */
    std::string model;
    int batch = 1;
    /** Souffle ablation level the artifact was compiled at. */
    int level = 4;
    /** Codegen backend name (`SouffleOptions::backend`). */
    std::string backend;
    /** Behavioral device fingerprint (gpu/device.h), hex. */
    std::string deviceFp;
    /** `programFingerprint` of the stored TE program, hex. */
    std::string programHash;
    /** Display name of the compile (`Compiled::name`). */
    std::string name;

    /** Directory name this key maps to under a store root. */
    std::string subdir() const;
};

/** The identity key for compiling @p model_key at @p batch under
 *  @p options (level, backend, device); hash/name left empty. */
ArtifactMeta artifactKeyFor(const std::string &model_key, int batch,
                            const SouffleOptions &options);

/**
 * Persist @p compiled under @p root (created if missing) with the
 * identity of @p key; the program hash and name are taken from
 * @p compiled. Returns the artifact directory written.
 */
std::string saveArtifact(const std::string &root,
                         const ArtifactMeta &key,
                         const Compiled &compiled);

/** True when @p root holds an artifact for @p key. */
bool hasArtifact(const std::string &root, const ArtifactMeta &key);

/**
 * Load the artifact for @p key from @p root. Throws FatalError when
 * the artifact is missing, its version or identity does not match, or
 * the stored program fails fingerprint verification.
 */
Compiled loadArtifact(const std::string &root, const ArtifactMeta &key);

/** Every artifact under @p root, sorted by subdirectory name. */
std::vector<ArtifactMeta> listArtifacts(const std::string &root);

} // namespace souffle
