#pragma once

/**
 * @file
 * Top-level compiler interface: every strategy (Souffle and the six
 * baselines of paper Sec. 7.2) takes an operator graph and produces a
 * compiled module for the simulated device, plus the (possibly
 * transformed) TE program that defines its semantics.
 */

#include <string>

#include "common/hash.h"
#include "compiler/pass_stats.h"
#include "gpu/device.h"
#include "graph/graph.h"
#include "graph/lowering.h"
#include "kernel/build.h"
#include "kernel/kernel_ir.h"
#include "sched/schedule.h"
#include "te/program.h"

namespace souffle {

/** The compilers evaluated in the paper (Table 3). */
enum class CompilerId : uint8_t {
    kSouffle,
    kXla,
    kAnsor,
    kTensorRT,
    kRammer,
    kApollo,
    kIree,
};

std::string compilerName(CompilerId id);

/** Result of compiling a graph with one strategy. */
struct Compiled
{
    std::string name;
    /** Semantics of the compiled code (possibly transformed TEs). */
    TeProgram program;
    /** The kernels handed to the simulator. */
    CompiledModule module;
    /**
     * The per-TE schedules and the kernel plan the module was built
     * from. Filled by the Souffle pipeline driver (moved out of the
     * CompileContext at `take()`); empty for baseline strategies.
     * Persisted in the compiled artifact (compiler/artifact_io.h) so
     * a reloaded module carries its full provenance.
     */
    std::vector<Schedule> schedules;
    ModulePlan plan;
    /**
     * Content address of the final (transformed) TE program — see
     * te/fingerprint.h. Filled by the Souffle pipeline driver; two
     * compiles with the same hash + device + options produced
     * interchangeable modules.
     */
    Fingerprint programHash;
    /**
     * Codegen backend that produced `generatedSource` (a
     * CodeGenBackendRegistry name), and the emitted module text.
     * Filled by the codegen pass; empty for baseline strategies and
     * pipelines that stop before code generation.
     */
    std::string backendName;
    std::string generatedSource;

    // Compile-time statistics.
    double compileTimeMs = 0.0;
    /** Per-pass timing/counter breakdown of the pipeline that built
     *  this result (execution order, verifier runs included). */
    PassStatistics passStats;
    int subprograms = 0;
    int horizontalGroups = 0;
    int verticalMerges = 0;
    int loadsOverlapped = 0;
    int loadsCached = 0;
    /** Subprograms split back into per-stage kernels by the
     *  adaptive-fusion profitability pass. */
    int adaptiveSplits = 0;
};

/**
 * Compile @p graph with strategy @p id on @p device.
 *
 * @throws UnsupportedError when the strategy's documented support
 *         matrix rejects the model (mirrors the "Failed" entries of
 *         paper Table 3).
 */
Compiled compileWith(CompilerId id, const Graph &graph,
                     const DeviceSpec &device);

} // namespace souffle
