#include "compiler/artifact_io.h"

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <sys/stat.h>

#include "common/json.h"
#include "common/logging.h"
#include "kernel/serialize.h"
#include "te/fingerprint.h"
#include "te/serialize.h"

namespace souffle {

namespace {

void
makeDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
        SOUFFLE_FATAL("cannot create directory '" << path << "'");
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream file(path);
    SOUFFLE_REQUIRE(file.good(), "cannot open " << path);
    file << content;
    SOUFFLE_REQUIRE(file.good(), "failed writing " << path);
}

std::string
readFile(const std::string &path)
{
    std::ifstream file(path);
    SOUFFLE_REQUIRE(file.good(), "cannot open " << path);
    std::stringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::string
serializeMeta(const ArtifactMeta &meta)
{
    JsonWriter w(JsonWriter::Style::kCompact);
    w.beginObject();
    w.field("version", meta.version);
    w.field("model", meta.model);
    w.field("batch", meta.batch);
    w.field("level", meta.level);
    w.field("backend", meta.backend);
    w.field("deviceFp", meta.deviceFp);
    w.field("programHash", meta.programHash);
    w.field("name", meta.name);
    w.endObject();
    return w.str();
}

ArtifactMeta
deserializeMeta(const std::string &text)
{
    const JsonValue doc = parseJson(text);
    ArtifactMeta meta;
    meta.version = static_cast<int>(doc.at("version").asInt());
    meta.model = doc.at("model").asString();
    meta.batch = static_cast<int>(doc.at("batch").asInt());
    meta.level = static_cast<int>(doc.at("level").asInt());
    meta.backend = doc.at("backend").asString();
    meta.deviceFp = doc.at("deviceFp").asString();
    meta.programHash = doc.at("programHash").asString();
    meta.name = doc.at("name").asString();
    return meta;
}

} // namespace

std::string
ArtifactMeta::subdir() const
{
    return model + "-b" + std::to_string(batch) + "-v"
           + std::to_string(level) + "-" + backend + "-" + deviceFp;
}

ArtifactMeta
artifactKeyFor(const std::string &model_key, int batch,
               const SouffleOptions &options)
{
    ArtifactMeta key;
    key.model = model_key;
    key.batch = batch;
    key.level = static_cast<int>(options.level);
    key.backend = options.backend;
    key.deviceFp = deviceFingerprint(options.device).toHex();
    return key;
}

std::string
saveArtifact(const std::string &root, const ArtifactMeta &key,
             const Compiled &compiled)
{
    SOUFFLE_REQUIRE(compiled.programHash.valid(),
                    "cannot save an artifact without a program hash "
                    "(did the compile run the full Souffle pipeline?)");
    ArtifactMeta meta = key;
    meta.programHash = compiled.programHash.toHex();
    meta.name = compiled.name;

    makeDir(root);
    const std::string dir = root + "/" + meta.subdir();
    makeDir(dir);
    writeFile(dir + "/meta.json", serializeMeta(meta));
    writeFile(dir + "/program.json",
              serializeTeProgram(compiled.program));
    writeFile(dir + "/schedules.json",
              serializeSchedules(compiled.schedules));
    writeFile(dir + "/plan.json", serializeModulePlan(compiled.plan));
    writeFile(dir + "/module.json",
              serializeCompiledModule(compiled.module));
    writeFile(dir + "/module.src", compiled.generatedSource);
    return dir;
}

bool
hasArtifact(const std::string &root, const ArtifactMeta &key)
{
    return fileExists(root + "/" + key.subdir() + "/meta.json");
}

Compiled
loadArtifact(const std::string &root, const ArtifactMeta &key)
{
    const std::string dir = root + "/" + key.subdir();
    SOUFFLE_REQUIRE(fileExists(dir + "/meta.json"),
                    "no compiled artifact for "
                        << key.subdir() << " under '" << root << "'");
    const ArtifactMeta meta = deserializeMeta(
        readFile(dir + "/meta.json"));
    SOUFFLE_REQUIRE(meta.version == key.version,
                    "artifact format version mismatch in '"
                        << dir << "': have " << meta.version
                        << ", want " << key.version);
    SOUFFLE_REQUIRE(meta.model == key.model && meta.batch == key.batch
                        && meta.level == key.level
                        && meta.backend == key.backend
                        && meta.deviceFp == key.deviceFp,
                    "artifact identity mismatch in '"
                        << dir << "': meta says " << meta.subdir());

    Compiled compiled;
    compiled.name = meta.name;
    compiled.program =
        deserializeTeProgram(readFile(dir + "/program.json"));
    compiled.schedules =
        deserializeSchedules(readFile(dir + "/schedules.json"));
    compiled.plan = deserializeModulePlan(readFile(dir + "/plan.json"));
    compiled.module =
        deserializeCompiledModule(readFile(dir + "/module.json"));
    compiled.backendName = meta.backend;
    compiled.generatedSource = readFile(dir + "/module.src");
    compiled.programHash = Fingerprint::fromHex(meta.programHash);

    // Integrity: the stored program must hash to the recorded
    // address. This catches corruption and hand-edits of
    // program.json; the other files are covered by the identity
    // check above plus the structural validation their
    // deserializers perform.
    const Fingerprint actual = programFingerprint(compiled.program);
    SOUFFLE_REQUIRE(actual == compiled.programHash,
                    "artifact '" << dir
                                 << "' failed integrity verification: "
                                    "stored program hashes to "
                                 << actual.toHex() << ", meta records "
                                 << meta.programHash);
    return compiled;
}

std::vector<ArtifactMeta>
listArtifacts(const std::string &root)
{
    std::vector<std::string> subdirs;
    DIR *dir = ::opendir(root.c_str());
    if (dir == nullptr)
        return {};
    while (const dirent *entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..")
            continue;
        if (fileExists(root + "/" + name + "/meta.json"))
            subdirs.push_back(name);
    }
    ::closedir(dir);
    std::sort(subdirs.begin(), subdirs.end());

    std::vector<ArtifactMeta> metas;
    metas.reserve(subdirs.size());
    for (const std::string &name : subdirs)
        metas.push_back(deserializeMeta(
            readFile(root + "/" + name + "/meta.json")));
    return metas;
}

} // namespace souffle
