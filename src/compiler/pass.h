#pragma once

/**
 * @file
 * The compiler pass interface and the shared compile context.
 *
 * A compilation is a sequence of passes over one `CompileContext`,
 * which owns every evolving artifact: the source graph, the lowered
 * TE program (mutated in place by the transformations), the per-TE
 * schedules, the kernel plan, and the compiled module under
 * construction. The global analysis is managed by the context and
 * recomputed lazily: a pass that mutates the TE program declares
 * `invalidatesAnalysis()` and the next consumer gets a fresh one.
 */

#include <memory>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "compiler/options.h"
#include "graph/lowering.h"
#include "kernel/build.h"
#include "sched/schedule.h"

namespace souffle {

class PassManager;

/**
 * All state of one compilation. Owned artifacts are populated as the
 * pipeline progresses:
 *
 *  - `lowered`   -- written by lowering; `lowered.program` is *the*
 *                   working TE program every later pass reads/mutates
 *                   (side tables go stale after the transformations);
 *  - `schedules` -- written by the scheduling pass;
 *  - `plan`      -- written by a planning pass (partition / stage /
 *                   cluster);
 *  - `result`    -- name and counters accumulate throughout; the
 *                   module is written by the build pass; the program
 *                   moves in at `take()`.
 *
 * The context is pinned in memory (non-copyable, non-movable) because
 * the cached GlobalAnalysis holds references into `lowered.program`.
 */
struct CompileContext
{
    CompileContext(const Graph &graph, SouffleOptions options);

    CompileContext(const CompileContext &) = delete;
    CompileContext &operator=(const CompileContext &) = delete;

    const Graph &graph;
    SouffleOptions options;

    /** Lowered model; `lowered.program` is the working program. */
    LoweredModel lowered;
    /** Per-TE schedules (parallel to program TE ids). */
    std::vector<Schedule> schedules;
    /** Kernel plan the module is built from. */
    ModulePlan plan;
    /** The result under construction. */
    Compiled result;

    /** Per-pass timings and counters, filled by the PassManager. */
    PassStatistics stats;

    TeProgram &program() { return lowered.program; }
    const TeProgram &program() const { return lowered.program; }

    /**
     * The global analysis of the current program, computed on first
     * use and after every invalidation (with
     * `options.intensityThreshold`). The reference stays valid until
     * the next `invalidateAnalysis()`.
     */
    const GlobalAnalysis &analysis();

    /** True if a cached analysis for the current program exists. */
    bool analysisValid() const { return cachedAnalysis != nullptr; }

    /** Drop the cached analysis (the program changed underneath it). */
    void invalidateAnalysis() { cachedAnalysis.reset(); }

    /**
     * Record a named counter on the currently-running pass's timing
     * entry. No-op when called outside a PassManager run.
     */
    void counter(const std::string &name, int64_t value);

    /**
     * Finalize: move the working program and the statistics into the
     * result and return it. The context must not be used afterwards.
     */
    Compiled take();

  private:
    friend class PassManager;
    /** Timing entry of the pass currently running, if any. */
    PassTiming *currentTiming = nullptr;
    std::unique_ptr<GlobalAnalysis> cachedAnalysis;
};

/** One compiler pass: a named transformation of the context. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable kebab-case name shown in pipelines and statistics. */
    virtual std::string name() const = 0;

    /** Execute the pass. Throws on unrecoverable input errors. */
    virtual void run(CompileContext &ctx) = 0;

    /**
     * True if the pass mutates the TE program, invalidating the
     * context's cached GlobalAnalysis. The PassManager drops the
     * cache after running such a pass, so analysis is recomputed only
     * when actually stale.
     */
    virtual bool invalidatesAnalysis() const { return false; }
};

} // namespace souffle
