#pragma once

/**
 * @file
 * The pass manager: executes a registered pass sequence over one
 * CompileContext, times every pass into `PassStatistics`, drops the
 * cached GlobalAnalysis after passes that declare it stale, and (by
 * default) interleaves an `IrVerifier` run after every pass so a
 * broken artifact is caught at the pass that broke it, not three
 * stages later.
 */

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "compiler/pass.h"
#include "lint/diagnostic.h"

namespace souffle {

/**
 * Inter-pass IR verifier (itself a pass, so it can be registered or
 * interleaved). Checks, for every artifact that exists so far:
 *
 *  - TE program: ids consistent, producer links intact, dependence
 *    graph acyclic (inputs produced strictly earlier), read maps
 *    slot- and rank-consistent;
 *  - schedules: exactly one per TE with sane launch dimensions;
 *  - kernel plan: schedules exist ("every TE scheduled before
 *    merge"), every TE in exactly one stage of one kernel, and every
 *    multi-stage (grid-sync) kernel within the cooperative-wave
 *    resource cap of the device;
 *  - compiled module: every TE covered exactly once, no empty stage.
 *
 * Violations are collected through the lint `Diagnostic` machinery
 * (rule id "ir-verify", severity error) so *every* violation is
 * reported in one shot, then a FatalError carrying the full rendered
 * report is thrown (unlike TeProgram::validate, which aborts) so
 * tests and tools can observe rejections.
 */
class IrVerifier : public Pass
{
  public:
    std::string name() const override { return "verify"; }
    void run(CompileContext &ctx) override;

    /** Collect every violation without throwing. */
    LintReport collect(CompileContext &ctx) const;
};

/**
 * Structural check of a TE program. Appends one error-severity
 * diagnostic (rule "ir-verify") per violation to @p report.
 */
void collectTeProgramDiagnostics(const TeProgram &program,
                                 LintReport &report);

/** Throwing structural check of a TE program (see IrVerifier). */
void verifyTeProgram(const TeProgram &program);

/** An ordered, named pass pipeline. */
class PassManager
{
  public:
    explicit PassManager(std::string name = "pipeline")
        : pipelineName(std::move(name))
    {
    }

    PassManager(PassManager &&) = default;
    PassManager &operator=(PassManager &&) = default;

    /** Append a pass; returns *this for chaining. */
    PassManager &add(std::unique_ptr<Pass> pass);

    /** Construct and append a pass of type @p P. */
    template <typename P, typename... Args>
    PassManager &
    add(Args &&...args)
    {
        return add(std::make_unique<P>(std::forward<Args>(args)...));
    }

    /**
     * Toggle the interleaved IrVerifier (on by default: the checks
     * are linear in program size, negligible next to scheduling).
     */
    PassManager &
    setVerifyBetweenPasses(bool on)
    {
        verifyBetween = on;
        return *this;
    }

    bool verifyBetweenPasses() const { return verifyBetween; }

    /**
     * Run every registered pass in order on @p ctx, recording one
     * PassTiming per pass run (verifier runs included) into
     * `ctx.stats`. Exceptions from passes propagate unchanged.
     */
    void run(CompileContext &ctx) const;

    const std::string &name() const { return pipelineName; }
    size_t numPasses() const { return passes.size(); }
    std::vector<std::string> passNames() const;

    /** Human-readable numbered pass list (for --dump-pipeline). */
    std::string toString() const;

  private:
    /** Run one pass with its own timing entry in ctx.stats. */
    static void runTimed(Pass &pass, CompileContext &ctx);

    std::string pipelineName;
    std::vector<std::unique_ptr<Pass>> passes;
    bool verifyBetween = true;
};

} // namespace souffle
