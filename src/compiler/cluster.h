#pragma once

/**
 * @file
 * Rule-based kernel clustering shared by the baseline compilers.
 *
 * Each baseline in the paper's evaluation fuses operators with
 * hand-crafted rules (Sec. 8.1 analyzes exactly which rules each one
 * lacks). This clusterer walks the TE program in order and groups TEs
 * into kernels under a parameterized rule set, so each baseline is a
 * small declarative configuration instead of a separate engine.
 */

#include "analysis/analysis.h"
#include "graph/lowering.h"
#include "kernel/build.h"

namespace souffle {

/** Fusion rule set of one baseline compiler. */
struct ClusterRules
{
    /**
     * Map compute-intensive contractions (GEMM/conv) to closed-source
     * library kernels that cannot fuse with anything else (XLA's
     * cuBLAS custom-calls, TensorRT's tactics).
     */
    bool libraryContractions = false;
    /** Time factor of library contraction kernels (<1 = hand-tuned). */
    double libraryFactor = 1.0;
    /** Time factor of *generated* matmul kernels (codegen quality). */
    double generatedMatmulFactor = 1.0;
    /** Time factor of generated convolution kernels. */
    double generatedConvFactor = 1.0;
    /**
     * Fuse trailing one-relies-on-one TEs into a contraction kernel
     * (TensorRT's GEMM+bias+activation tactics, TVM's epilogue
     * fusion).
     */
    bool fuseEpilogueIntoContraction = false;
    /**
     * Fuse one-relies-on-one TEs whose in-cluster reads broadcast or
     * permute (XLA loop fusion can; Apollo's polyhedral rules only
     * fuse identity-aligned element-wise chains).
     */
    bool fuseBroadcastReads = false;
    /**
     * Fuse one-relies-on-one TEs that read other one-relies-on-one
     * results through arbitrary injective maps (TVM fuses whole
     * injective chains: slice/reshape/transpose + arithmetic).
     * Reads of in-cluster *reduction* outputs still require identity
     * alignment.
     */
    bool fuseInjectiveReads = false;
    /**
     * Fuse one-relies-on-one producers into a consumer reduction
     * (IREE's producer-consumer tile-and-fuse).
     */
    bool fusePrologueIntoReduction = false;
    /** Max reduction TEs per memory-intensive cluster (XLA: 1). */
    int maxReductionsPerCluster = 1;
};

/**
 * Cluster @p lowered into kernels under @p rules. @p graph supplies op
 * kinds (conv vs matmul) for the per-kind library factors.
 */
ModulePlan clusterKernels(const Graph &graph, const LoweredModel &lowered,
                          const GlobalAnalysis &analysis,
                          const ClusterRules &rules);

} // namespace souffle
