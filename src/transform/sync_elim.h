#pragma once

/**
 * @file
 * Redundant-synchronization elimination over the kernel IR.
 *
 * The builders insert fences mechanically: `buildKernel` opens every
 * stage after the first with a kGridSync, `buildStage` separates
 * fused reduction producers from their consumers with a kBarrier, and
 * the reuse-cache optimization appends a spill kBarrier to every
 * stage that evicted buffers. Mechanical insertion over-synchronizes:
 * a spill barrier at the end of a stage whose successor opens with a
 * grid.sync() orders nothing the stronger fence does not already
 * order (no instruction separates them), and a fence trailing the
 * kernel's last instruction orders nothing at all — kernel completion
 * is a device-wide fence.
 *
 * This transform deletes exactly the fences the dataflow analysis
 * (analysis/dataflow.h `KernelDataflow::fenceVerdicts`) proves
 * redundant, and downgrades grid syncs where only block-scope
 * dependences cross them. The win is measurable: the device simulator
 * charges every barrier/sync against the stage time, so each deleted
 * fence is a monotone latency reduction, and the `redundant-sync`
 * lint rule reports zero findings afterwards. Semantics are untouched
 * by construction — only instructions whose ordering effect is
 * subsumed by an adjacent kept fence or a kernel boundary are
 * removed, and the TE program (what the interpreter and the native C
 * backend execute) is not modified at all.
 *
 * `SyncElimPass` runs in the V4 pipeline after the reuse-cache
 * optimization (the only pass that inserts removable fences on
 * builder output) and re-simulates the module to enforce the
 * latency-non-regression gate.
 */

#include "analysis/analysis.h"
#include "compiler/pass.h"
#include "kernel/kernel_ir.h"

namespace souffle {

/** What one elimination run did. */
struct SyncElimStats
{
    int barriersRemoved = 0;
    int gridSyncsRemoved = 0;
    int syncsDowngraded = 0;
    /** Kernels with at least one removal or downgrade. */
    int kernelsTouched = 0;
};

/**
 * Delete every provably redundant fence of @p module and downgrade
 * grid syncs that only cover block-scope dependences. Library
 * kernels (closed-source cost models) are left untouched.
 */
SyncElimStats eliminateRedundantSyncs(const TeProgram &program,
                                      const GlobalAnalysis &analysis,
                                      CompiledModule &module);

/**
 * Pipeline adapter. Counters: "barriersRemoved", "gridSyncsRemoved",
 * "syncsDowngraded", "kernelsTouched". Fails the compile if the
 * simulated latency regresses (it cannot: fences only cost time in
 * the device model — the gate documents the contract).
 */
class SyncElimPass : public Pass
{
  public:
    std::string name() const override { return "sync-elim"; }
    void run(CompileContext &ctx) override;
};

} // namespace souffle
