#include "transform/partition.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace souffle {

namespace {

/** Running resource envelope of a subprogram under construction. */
struct Envelope
{
    /** Max blocks over schedules with a fixed tiling (contractions). */
    int64_t maxRigidBlocks = 0;
    int64_t maxSmem = 0;
    int64_t maxRegsPerBlock = 0;
    int maxThreads = 0;

    void
    add(const Schedule &sched)
    {
        // Grid-stride schedules (element-wise / reduction TEs) can run
        // with any block count, so only rigidly-tiled schedules
        // constrain the cooperative wave.
        if (!sched.gridStride)
            maxRigidBlocks = std::max(maxRigidBlocks, sched.numBlocks);
        maxSmem = std::max(maxSmem, sched.sharedMemBytes);
        maxRegsPerBlock = std::max(maxRegsPerBlock, sched.regsPerBlock());
        maxThreads = std::max(maxThreads, sched.threadsPerBlock);
    }

    /** max_grid * max_occ < C, expressed as wave residency. */
    bool
    feasible(const DeviceSpec &device) const
    {
        const int64_t wave = device.maxBlocksPerWave(
            maxSmem, maxRegsPerBlock, maxThreads);
        return wave > 0 && maxRigidBlocks <= wave;
    }
};

} // namespace

bool
subprogramFitsDevice(const std::vector<int> &tes,
                     const std::vector<Schedule> &schedules,
                     const DeviceSpec &device)
{
    Envelope envelope;
    for (int te_id : tes)
        envelope.add(schedules.at(te_id));
    return envelope.feasible(device);
}

PartitionResult
partitionProgram(const TeProgram &program, const GlobalAnalysis &analysis,
                 const std::vector<Schedule> &schedules,
                 const DeviceSpec &device)
{
    (void)analysis;
    PartitionResult result;
    Subprogram current;
    Envelope envelope;

    for (int te_id = 0; te_id < program.numTes(); ++te_id) {
        Envelope candidate = envelope;
        candidate.add(schedules.at(te_id));
        if (!current.tes.empty() && !candidate.feasible(device)) {
            // Close the current subprogram and open a new one with
            // this TE (paper Sec. 5.4, greedy BFS split).
            result.subprograms.push_back(std::move(current));
            current = Subprogram{};
            envelope = Envelope{};
            envelope.add(schedules.at(te_id));
        } else {
            envelope = candidate;
        }
        current.tes.push_back(te_id);
    }
    if (!current.tes.empty())
        result.subprograms.push_back(std::move(current));
    return result;
}

std::vector<StagePlan>
groupStages(const TeProgram &program, const GlobalAnalysis &analysis,
            const std::vector<int> &tes)
{
    (void)analysis;
    std::vector<StagePlan> stages;
    StagePlan current;
    std::unordered_set<TensorId> produced_in_stage;

    auto reads_aligned = [&](const TensorExpr &te, size_t slot) {
        std::vector<ReadAccess> reads;
        te.body->collectReads(reads);
        for (const ReadAccess &access : reads) {
            if (access.inputSlot != static_cast<int>(slot))
                continue;
            if (access.flat || !access.map->isIdentity())
                return false;
        }
        return true;
    };

    for (int te_id : tes) {
        const TensorExpr &te = program.te(te_id);
        bool needs_sync = false;
        if (!current.tes.empty()) {
            for (size_t slot = 0; slot < te.inputs.size(); ++slot) {
                if (!produced_in_stage.count(te.inputs[slot]))
                    continue;
                // In-stage dependence: reductions re-tile the data and
                // non-identity reads cross block boundaries; both need
                // a grid.sync() (new stage). Identity epilogue reads
                // stay in registers/shared memory of the same block.
                if (te.hasReduce() || !reads_aligned(te, slot)) {
                    needs_sync = true;
                    break;
                }
            }
        }
        if (needs_sync) {
            stages.push_back(std::move(current));
            current = StagePlan{};
            produced_in_stage.clear();
        }
        current.tes.push_back(te_id);
        produced_in_stage.insert(te.output);
    }
    if (!current.tes.empty())
        stages.push_back(std::move(current));
    return stages;
}

} // namespace souffle
