#include "transform/vertical.h"

#include <algorithm>

#include "common/logging.h"

namespace souffle {

namespace {

/** Max expression-tree size produced by one inlining step. */
constexpr int64_t kInlineNodeBudget = 512;

/** Drop input slots that are no longer read and renumber the rest. */
void
compactSlots(TensorExpr &te)
{
    std::vector<ReadAccess> reads;
    te.body->collectReads(reads);
    std::vector<bool> used(te.inputs.size(), false);
    for (const ReadAccess &access : reads)
        used[access.inputSlot] = true;

    std::vector<int> remap(te.inputs.size(), 0);
    std::vector<TensorId> new_inputs;
    for (size_t s = 0; s < te.inputs.size(); ++s) {
        if (!used[s])
            continue;
        remap[s] = static_cast<int>(new_inputs.size());
        new_inputs.push_back(te.inputs[s]);
    }
    if (new_inputs.size() == te.inputs.size())
        return;
    te.body = te.body->remapSlots(remap);
    te.inputs = std::move(new_inputs);
}

/** True if any read of @p slot in @p body is a flat read. */
bool
readsSlotFlat(const ExprPtr &body, int slot)
{
    std::vector<ReadAccess> reads;
    body->collectReads(reads);
    for (const ReadAccess &access : reads) {
        if (access.inputSlot == slot && access.flat)
            return true;
    }
    return false;
}

} // namespace

VerticalStats
verticalTransform(TeProgram &program)
{
    VerticalStats stats;
    bool changed = true;
    while (changed) {
        changed = false;
        ++stats.rounds;

        // Consumer counts for the current program state.
        std::vector<int> consumer_count(program.numTensors(), 0);
        for (const auto &te : program.tes()) {
            std::vector<TensorId> seen;
            for (TensorId in : te.inputs) {
                if (std::find(seen.begin(), seen.end(), in)
                    != seen.end())
                    continue;
                seen.push_back(in);
                ++consumer_count[in];
            }
        }

        for (int v_id = 0; v_id < program.numTes(); ++v_id) {
            TensorExpr &v = program.mutableTe(v_id);
            if (v.hasReduce())
                continue; // vertical transform targets one-on-one TEs
            for (size_t slot = 0; slot < v.inputs.size(); ++slot) {
                const TensorId t = v.inputs[slot];
                const TensorDecl &t_decl = program.tensor(t);
                const int u_id = t_decl.producer;
                if (u_id < 0)
                    continue;
                if (t_decl.role == TensorRole::kOutput)
                    continue;
                const TensorExpr &u = program.te(u_id);
                if (u.hasReduce())
                    continue;
                if (consumer_count[t] != 1)
                    continue;
                if (readsSlotFlat(v.body, static_cast<int>(slot))
                    && !isFlatTransparent(u.body, u.outShape))
                    continue;
                // Inlining substitutes the whole producer body at
                // every read site; cap the resulting tree size so
                // chains of horizontally-merged TEs (many reads x
                // many-branch bodies) cannot grow exponentially.
                int64_t site_count = 0;
                {
                    std::vector<ReadAccess> reads;
                    v.body->collectReads(reads);
                    for (const ReadAccess &access : reads) {
                        if (access.inputSlot
                            == static_cast<int>(slot))
                            ++site_count;
                    }
                }
                if (v.body->nodeCount()
                        + site_count * u.body->nodeCount()
                    > kInlineNodeBudget)
                    continue;

                // Build the slot remap for u's inputs into v's space.
                std::vector<int> u_remap(u.inputs.size(), 0);
                std::vector<TensorId> new_inputs = v.inputs;
                for (size_t us = 0; us < u.inputs.size(); ++us) {
                    const TensorId u_in = u.inputs[us];
                    auto it = std::find(new_inputs.begin(),
                                        new_inputs.end(), u_in);
                    if (it != new_inputs.end()) {
                        u_remap[us] = static_cast<int>(
                            it - new_inputs.begin());
                    } else {
                        u_remap[us] =
                            static_cast<int>(new_inputs.size());
                        new_inputs.push_back(u_in);
                    }
                }

                v.body = v.body->inlineSlot(static_cast<int>(slot),
                                            u.body, u_remap);
                v.inputs = std::move(new_inputs);
                compactSlots(v);
                ++stats.merged;
                changed = true;
                break; // inputs changed; revisit this TE next round
            }
        }

        if (changed)
            program.removeDeadCode();
    }
    program.validate();
    return stats;
}

} // namespace souffle
