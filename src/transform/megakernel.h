#pragma once

/**
 * @file
 * The persistent-megakernel transform (compilation level V5).
 *
 * Lowers a V4 `CompiledModule` — N kernels whose stages serialize on
 * kernel launches and grid.sync() — into ONE persistent kernel plus a
 * `TaskGraph` (kernel/task_graph.h): every stage becomes a task,
 * every inter-stage grid.sync() is deleted, and the ordering it
 * provided is re-expressed as dependence edges the on-device
 * scheduler enforces with per-edge events. Worker blocks stay
 * resident for the whole module (one launch total) and SMs drain
 * per-SM work queues (gpu/sim.h megakernel mode), so independent
 * stages overlap instead of waiting at whole-grid barriers.
 *
 * Edge derivation is layered, all stage-granular:
 *  - RAW/WAR edges project the kernel dataflow (analysis/dataflow.h)
 *    of the merged stage sequence onto stage pairs;
 *  - WAW edges chain the writers of each tensor in stage order
 *    (two-phase reduction stages atomically accumulate into one
 *    output; running them concurrently would be nondeterministic on
 *    the native backend);
 *  - alias edges order stages whose tensors share workspace bytes
 *    under the memory plan (runtime/memory_plan.h): the plan proved
 *    their TE-order live intervals disjoint, which task-parallel
 *    execution would otherwise violate.
 * The union is then deduplicated per (from, to) pair and transitively
 * reduced: the scheduler charges an event signal + wait per edge, so
 * an edge whose ordering a longer path already implies is pure
 * overhead. Reachability — what the `task-graph-dep` lint rule checks
 * coverage against — is unchanged by the reduction.
 *
 * Fallback rule (the module is left in its V4 form, task graph
 * empty):
 *  - a kernel uses a closed-source library (cannot join a persistent
 *    launch);
 *  - worker-block residency is infeasible: the per-stage maximum of
 *    shared memory / registers / threads leaves zero resident blocks
 *    per SM;
 *  - the simulated megakernel is not strictly faster than the V4
 *    module under the charged scheduler overheads (no free lunch).
 */

#include <map>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "compiler/pass.h"
#include "kernel/kernel_ir.h"

namespace souffle {

/**
 * Stages touching each tensor of @p kernel, in stage order:
 * instruction streams plus TE-level reads/writes (register-fused
 * consumers read inputs without a serving load, so streams alone
 * under-approximate). Used here to derive alias edges from the
 * compile-time memory plan, and by the native runtime to recompute
 * them against its own (dtype-widened) plan.
 */
std::map<TensorId, std::vector<int>>
megakernelStagesTouching(const TeProgram &program, const Kernel &kernel);

/** What one megakernel lowering did (or why it declined). */
struct MegakernelStats
{
    /** True when the module was rewritten to the task-graph form. */
    bool applied = false;
    /** Human-readable fallback reason when !applied. */
    std::string fallbackReason;
    int tasks = 0;
    /** Edges kept after dedup + transitive reduction. */
    int edges = 0;
    /** Redundant edges dropped by the transitive reduction. */
    int edgesPruned = 0;
    int gridSyncsRemoved = 0;
    /** Simulated latency of the V4 input / the V5 candidate (us). */
    double gridSyncUs = 0.0;
    double megakernelUs = 0.0;
};

/**
 * Lower @p module into the persistent-megakernel form in place, or
 * leave it untouched when the feasibility/profitability check says
 * no. Deterministic: same inputs, same module bytes.
 */
MegakernelStats applyMegakernel(const TeProgram &program,
                                const GlobalAnalysis &analysis,
                                const DeviceSpec &device,
                                CompiledModule &module);

/**
 * Pipeline adapter (V5). Counters: "megakernelApplied",
 * "megakernelTasks", "megakernelEdges", "gridSyncsRemoved",
 * "megakernelFallback".
 */
class MegakernelPass : public Pass
{
  public:
    std::string name() const override { return "megakernel"; }
    void run(CompileContext &ctx) override;
};

} // namespace souffle
