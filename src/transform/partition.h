#pragma once

/**
 * @file
 * Resource-aware TE program partitioning (paper Sec. 5.4) and stage
 * grouping inside a subprogram (Sec. 6.3/6.4).
 *
 * Souffle wants one kernel per subprogram so it can keep data on-chip
 * and synchronize with grid.sync(). Cooperative launch requires every
 * block of the grid to be resident simultaneously, so a subprogram is
 * feasible only while max_grid x max_occupancy fits the device
 * (paper: `max_grid * max_occ < C`). The partitioner walks the TE
 * program in topological order and greedily accumulates TEs until the
 * constraint would break, then opens a new subprogram.
 *
 * Within a subprogram, TEs are grouped into kernel *stages*: a TE
 * joins the current stage when its in-stage inputs are read through
 * identity maps (register-level epilogue fusion via schedule
 * propagation); reductions over in-stage data, and reads that cross
 * block tiles (broadcast/transpose of in-stage results), start a new
 * stage behind a grid synchronization.
 */

#include <vector>

#include "analysis/analysis.h"
#include "gpu/device.h"
#include "kernel/build.h"
#include "sched/schedule.h"

namespace souffle {

/** One subprogram: a contiguous set of TEs mapped to one kernel. */
struct Subprogram
{
    std::vector<int> tes;
};

/** Result of resource-aware partitioning. */
struct PartitionResult
{
    std::vector<Subprogram> subprograms;
};

/** Partition @p program under the wave-residency constraint. */
PartitionResult partitionProgram(const TeProgram &program,
                                 const GlobalAnalysis &analysis,
                                 const std::vector<Schedule> &schedules,
                                 const DeviceSpec &device);

/**
 * True when the TEs of one subprogram fit a single cooperative wave
 * of @p device (`max_grid * max_occ < C` over the schedules' resource
 * envelope) -- the feasibility test the partitioner maintains
 * incrementally, exposed so the inter-pass IrVerifier can re-check
 * every grid-sync kernel it sees.
 */
bool subprogramFitsDevice(const std::vector<int> &tes,
                          const std::vector<Schedule> &schedules,
                          const DeviceSpec &device);

/**
 * Group the TEs of one subprogram into kernel stages (grid-sync
 * boundaries), per the rules above.
 */
std::vector<StagePlan> groupStages(const TeProgram &program,
                                   const GlobalAnalysis &analysis,
                                   const std::vector<int> &tes);

} // namespace souffle
