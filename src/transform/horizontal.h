#pragma once

/**
 * @file
 * Horizontal transformation for independent TEs (paper Sec. 6.1).
 *
 * Independent TEs with compatible shapes (equal trailing dims, equal
 * reduction extents and combiner) are concatenated along their first
 * output dimension into a single TE whose body selects the member
 * bodies with affine predicates (Fig. 3 of the paper). Consumers of
 * the member outputs are rewired to read offset slices of the merged
 * tensor. Shared inputs collapse into one slot, realizing the spatial
 * data-reuse opportunity of Sec. 5.1 (the tensor is loaded once for
 * all branches).
 *
 * This covers the QKV projections of attention layers, the per-group
 * convolutions of ResNeXt, the experts of MMoE, and the wavefront
 * GEMVs of an unrolled LSTM.
 */

#include "te/program.h"

namespace souffle {

/** Statistics returned by the horizontal transformation. */
struct HorizontalStats
{
    int groups = 0;    ///< merge groups formed
    int tesMerged = 0; ///< TEs folded into merged TEs
};

/**
 * Merge independent compatible TEs in @p program (rebuilds the program
 * in place). @p max_group_size caps how many TEs fold into one.
 */
HorizontalStats horizontalTransform(TeProgram &program,
                                    int max_group_size = 64);

} // namespace souffle
