#include "transform/transform_passes.h"

#include <numeric>

#include "transform/horizontal.h"
#include "transform/partition.h"
#include "transform/vertical.h"

namespace souffle {

void
HorizontalTransformPass::run(CompileContext &ctx)
{
    const HorizontalStats stats =
        horizontalTransform(ctx.program(), ctx.options.horizontalCap);
    ctx.result.horizontalGroups = stats.groups;
    if (remapTeToOp)
        ctx.lowered.teToOp.assign(ctx.program().numTes(), 0);
    ctx.counter("groups", stats.groups);
    ctx.counter("tesMerged", stats.tesMerged);
}

void
VerticalTransformPass::run(CompileContext &ctx)
{
    const VerticalStats stats = verticalTransform(ctx.program());
    ctx.result.verticalMerges = stats.merged;
    ctx.counter("merged", stats.merged);
    ctx.counter("rounds", stats.rounds);
}

void
PartitionPass::run(CompileContext &ctx)
{
    const PartitionResult partition =
        partitionProgram(ctx.program(), ctx.analysis(), ctx.schedules,
                         ctx.options.device);
    ctx.plan = ModulePlan{};
    int index = 0;
    int64_t stages = 0;
    for (const Subprogram &subprogram : partition.subprograms) {
        KernelPlan kernel;
        kernel.name = "subprogram_" + std::to_string(index++);
        kernel.stages =
            groupStages(ctx.program(), ctx.analysis(), subprogram.tes);
        stages += static_cast<int64_t>(kernel.stages.size());
        ctx.plan.kernels.push_back(std::move(kernel));
    }
    ctx.result.subprograms =
        static_cast<int>(partition.subprograms.size());
    ctx.counter("subprograms", ctx.result.subprograms);
    ctx.counter("stages", stages);
}

void
StageKernelsPass::run(CompileContext &ctx)
{
    std::vector<int> all_tes(ctx.program().numTes());
    std::iota(all_tes.begin(), all_tes.end(), 0);
    const std::vector<StagePlan> stages =
        groupStages(ctx.program(), ctx.analysis(), all_tes);
    ctx.plan = ModulePlan{};
    int index = 0;
    for (const StagePlan &stage : stages) {
        KernelPlan kernel;
        kernel.name = "stage_" + std::to_string(index++);
        kernel.stages.push_back(stage);
        ctx.plan.kernels.push_back(std::move(kernel));
    }
    ctx.result.subprograms = static_cast<int>(ctx.plan.kernels.size());
    ctx.counter("kernels", ctx.result.subprograms);
}

} // namespace souffle
