#include "transform/sync_elim.h"

#include <vector>

#include "analysis/dataflow.h"
#include "common/logging.h"
#include "gpu/sim.h"

namespace souffle {

SyncElimStats
eliminateRedundantSyncs(const TeProgram &program,
                        const GlobalAnalysis &analysis,
                        CompiledModule &module)
{
    SyncElimStats stats;
    for (Kernel &kernel : module.kernels) {
        if (kernel.usesLibrary)
            continue; // opaque cost model: streams are not rewritten
        const KernelDataflow dataflow(program, analysis, kernel);
        const std::vector<FenceVerdict> verdicts =
            dataflow.fenceVerdicts();

        // Collect per-stage edits; apply removals back to front so
        // instruction indices stay valid.
        bool touched = false;
        std::vector<std::vector<int>> removals(kernel.stages.size());
        for (const FenceVerdict &verdict : verdicts) {
            switch (verdict.action) {
              case FenceVerdict::Action::kRemove:
                removals[static_cast<size_t>(verdict.pos.stage)]
                    .push_back(verdict.pos.instr);
                if (verdict.kind == InstrKind::kBarrier)
                    ++stats.barriersRemoved;
                else
                    ++stats.gridSyncsRemoved;
                touched = true;
                break;
              case FenceVerdict::Action::kDowngrade: {
                Instr &instr =
                    kernel.stages[static_cast<size_t>(
                                      verdict.pos.stage)]
                        .instrs[static_cast<size_t>(verdict.pos.instr)];
                instr.kind = InstrKind::kBarrier;
                ++stats.syncsDowngraded;
                touched = true;
                break;
              }
              case FenceVerdict::Action::kKeep:
                break;
            }
        }
        for (size_t s = 0; s < removals.size(); ++s) {
            std::vector<Instr> &instrs = kernel.stages[s].instrs;
            for (size_t r = removals[s].size(); r-- > 0;)
                instrs.erase(instrs.begin() + removals[s][r]);
        }
        if (touched)
            ++stats.kernelsTouched;
    }
    return stats;
}

void
SyncElimPass::run(CompileContext &ctx)
{
    if (ctx.result.module.kernels.empty())
        return;
    const double before_us =
        simulate(ctx.result.module, ctx.options.device).totalUs;
    const SyncElimStats stats = eliminateRedundantSyncs(
        ctx.program(), ctx.analysis(), ctx.result.module);
    const double after_us =
        simulate(ctx.result.module, ctx.options.device).totalUs;

    ctx.counter("barriersRemoved", stats.barriersRemoved);
    ctx.counter("gridSyncsRemoved", stats.gridSyncsRemoved);
    ctx.counter("syncsDowngraded", stats.syncsDowngraded);
    ctx.counter("kernelsTouched", stats.kernelsTouched);
    // Integer nanoseconds: pass counters are integral.
    ctx.counter("latencySavedNs",
                static_cast<int64_t>((before_us - after_us) * 1000.0));

    // Fences only cost time in the device model, so elimination is a
    // monotone improvement; the gate documents (and enforces) it.
    SOUFFLE_REQUIRE(after_us <= before_us * (1.0 + 1e-9),
                    "sync-elim regressed simulated latency: "
                        << before_us << "us -> " << after_us << "us");
}

} // namespace souffle
