#include "transform/megakernel.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/dataflow.h"
#include "common/logging.h"
#include "gpu/sim.h"
#include "runtime/memory_plan.h"

namespace souffle {

std::map<TensorId, std::vector<int>>
megakernelStagesTouching(const TeProgram &program, const Kernel &kernel)
{
    std::map<TensorId, std::vector<int>> touches;
    auto note = [&](TensorId tensor, int stage) {
        if (tensor < 0)
            return;
        std::vector<int> &list = touches[tensor];
        if (list.empty() || list.back() != stage)
            list.push_back(stage);
    };
    for (size_t s = 0; s < kernel.stages.size(); ++s) {
        const KernelStage &stage = kernel.stages[s];
        const int index = static_cast<int>(s);
        for (int te_id : stage.teIds) {
            const TensorExpr &te = program.te(te_id);
            note(te.output, index);
            for (TensorId in : te.inputs)
                note(in, index);
        }
        for (const Instr &instr : stage.instrs)
            note(instr.tensor, index);
    }
    return touches;
}

MegakernelStats
applyMegakernel(const TeProgram &program, const GlobalAnalysis &analysis,
                const DeviceSpec &device, CompiledModule &module)
{
    MegakernelStats stats;
    if (module.kernels.empty()) {
        stats.fallbackReason = "empty module";
        return stats;
    }
    for (const Kernel &kernel : module.kernels) {
        if (kernel.usesLibrary) {
            stats.fallbackReason =
                "library kernel '" + kernel.name
                + "' cannot join a persistent launch";
            return stats;
        }
    }

    // One persistent kernel: every stage of every kernel in module
    // order, with the inter-stage grid syncs deleted (their ordering
    // becomes task edges). Block barriers stay: they order threads
    // *inside* a task, which the scheduler never splits.
    Kernel merged;
    merged.name = "megakernel";
    for (const Kernel &kernel : module.kernels) {
        for (const KernelStage &stage : kernel.stages) {
            KernelStage copy = stage;
            copy.instrs.clear();
            for (const Instr &instr : stage.instrs) {
                if (instr.kind == InstrKind::kGridSync)
                    ++stats.gridSyncsRemoved;
                else
                    copy.instrs.push_back(instr);
            }
            merged.stages.push_back(std::move(copy));
        }
    }

    // Residency: one worker block must fit an SM at the per-stage
    // maximum of shared memory / registers / threads.
    if (device.blocksPerSm(merged.sharedMemBytes(),
                           merged.regsPerBlock(),
                           merged.threadsPerBlock())
        < 1) {
        std::ostringstream why;
        why << "zero resident worker blocks per SM ("
            << merged.sharedMemBytes() << "B shared, "
            << merged.regsPerBlock() << " regs, "
            << merged.threadsPerBlock() << " threads)";
        stats.fallbackReason = why.str();
        return stats;
    }

    TaskGraph graph;
    for (size_t s = 0; s < merged.stages.size(); ++s) {
        const KernelStage &stage = merged.stages[s];
        TaskDesc task;
        task.name = stage.name;
        task.stage = static_cast<int>(s);
        task.blocks = std::max<int64_t>(1, stage.numBlocks);
        task.shards = static_cast<int>(std::min<int64_t>(
            task.blocks, std::max(1, device.numSms)));
        graph.tasks.push_back(std::move(task));
    }

    std::set<std::array<int64_t, 4>> seen;
    auto add_edge = [&](int from, int to, TensorId tensor,
                        TaskEdgeKind kind) {
        if (from == to || from < 0 || to < 0)
            return;
        if (!seen
                 .insert({from, to, tensor,
                          static_cast<int64_t>(kind)})
                 .second)
            return;
        TaskEdge edge;
        edge.from = from;
        edge.to = to;
        edge.tensor = tensor;
        edge.kind = kind;
        graph.edges.push_back(edge);
    };

    // RAW/WAR edges: the merged stream's dataflow, projected onto
    // stage pairs.
    const KernelDataflow dataflow(program, analysis, merged);
    for (const DepEdge &edge : dataflow.edges()) {
        if (edge.def.stage == edge.use.stage)
            continue; // intra-task program order covers it
        add_edge(edge.def.stage, edge.use.stage, edge.tensor,
                 edge.kind == DepEdge::Kind::kRaw ? TaskEdgeKind::kRaw
                                                  : TaskEdgeKind::kWar);
    }

    // WAW edges: chain each tensor's writer stages in order, so
    // concurrent tasks never race on one output (two-phase reduction
    // accumulators would be nondeterministic on the native backend).
    std::map<TensorId, std::vector<int>> writers;
    for (size_t s = 0; s < merged.stages.size(); ++s) {
        for (const Instr &instr : merged.stages[s].instrs) {
            if (instr.tensor < 0)
                continue;
            if (instr.kind != InstrKind::kStoreGlobal
                && instr.kind != InstrKind::kAtomicAdd
                && instr.kind != InstrKind::kCompute)
                continue;
            std::vector<int> &list = writers[instr.tensor];
            if (list.empty() || list.back() != static_cast<int>(s))
                list.push_back(static_cast<int>(s));
        }
    }
    for (const auto &[tensor, stages] : writers) {
        for (size_t i = 1; i < stages.size(); ++i)
            add_edge(stages[i - 1], stages[i], tensor,
                     TaskEdgeKind::kWaw);
    }

    // Alias edges: the memory plan reuses workspace bytes across
    // tensors with disjoint TE-order live intervals; task-parallel
    // execution must respect that order or the later tensor's writes
    // would clobber the earlier one while still in use.
    const MemoryPlan plan = planMemory(program, analysis);
    const std::map<TensorId, std::vector<int>> touches =
        megakernelStagesTouching(program, merged);
    for (size_t a = 0; a < plan.assignments.size(); ++a) {
        for (size_t b = a + 1; b < plan.assignments.size(); ++b) {
            const BufferAssignment &x = plan.assignments[a];
            const BufferAssignment &y = plan.assignments[b];
            const bool overlap = x.offset < y.offset + y.bytes
                                 && y.offset < x.offset + x.bytes;
            if (!overlap)
                continue;
            // The plan guarantees disjoint live intervals; order the
            // stages of the earlier tensor before the later one's.
            const BufferAssignment &early =
                x.liveFrom <= y.liveFrom ? x : y;
            const BufferAssignment &late =
                x.liveFrom <= y.liveFrom ? y : x;
            const auto early_it = touches.find(early.tensor);
            const auto late_it = touches.find(late.tensor);
            if (early_it == touches.end() || late_it == touches.end())
                continue;
            for (int from : early_it->second)
                for (int to : late_it->second)
                    add_edge(from, to, -1, TaskEdgeKind::kAlias);
        }
    }

    // Transitive reduction: an edge is redundant when a longer path
    // already orders its endpoints — the scheduler charges an event
    // signal+wait per edge, so every pruned edge is pure overhead
    // saved, and reachability (what the lint rule checks) is
    // untouched. Dedupe to one edge per (from, to) pair first (the
    // earliest in derivation order keeps the most specific kind:
    // RAW/WAR before WAW before alias).
    {
        const int n = graph.numTasks();
        std::vector<TaskEdge> unique_edges;
        std::set<std::pair<int, int>> pairs;
        for (const TaskEdge &edge : graph.edges)
            if (pairs.emplace(edge.from, edge.to).second)
                unique_edges.push_back(edge);
        std::vector<std::vector<bool>> reach(
            static_cast<size_t>(n),
            std::vector<bool>(static_cast<size_t>(n), false));
        std::vector<std::vector<int>> succ(static_cast<size_t>(n));
        for (const TaskEdge &edge : unique_edges)
            succ[static_cast<size_t>(edge.from)].push_back(edge.to);
        // Kahn topological order (ties by task index, deterministic);
        // processing it in reverse makes each node's successors'
        // closures complete before its own.
        std::vector<int> indeg(static_cast<size_t>(n), 0);
        for (const TaskEdge &edge : unique_edges)
            ++indeg[static_cast<size_t>(edge.to)];
        std::vector<int> order;
        order.reserve(static_cast<size_t>(n));
        std::set<int> frontier;
        for (int u = 0; u < n; ++u)
            if (indeg[static_cast<size_t>(u)] == 0)
                frontier.insert(u);
        while (!frontier.empty()) {
            const int u = *frontier.begin();
            frontier.erase(frontier.begin());
            order.push_back(u);
            for (int v : succ[static_cast<size_t>(u)])
                if (--indeg[static_cast<size_t>(v)] == 0)
                    frontier.insert(v);
        }
        SOUFFLE_REQUIRE(static_cast<int>(order.size()) == n,
                        "megakernel task graph has a cycle");
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            const int u = *it;
            for (int v : succ[static_cast<size_t>(u)]) {
                reach[static_cast<size_t>(u)][static_cast<size_t>(v)] =
                    true;
                for (int w = 0; w < n; ++w)
                    if (reach[static_cast<size_t>(v)]
                             [static_cast<size_t>(w)])
                        reach[static_cast<size_t>(u)]
                             [static_cast<size_t>(w)] = true;
            }
        }
        graph.edges.clear();
        for (const TaskEdge &edge : unique_edges) {
            bool redundant = false;
            for (int w : succ[static_cast<size_t>(edge.from)]) {
                if (w != edge.to
                    && reach[static_cast<size_t>(w)]
                            [static_cast<size_t>(edge.to)]) {
                    redundant = true;
                    break;
                }
            }
            if (redundant)
                ++stats.edgesPruned;
            else
                graph.edges.push_back(edge);
        }
    }

    stats.tasks = graph.numTasks();
    stats.edges = graph.numEdges();

    // Profitability under the charged scheduler overheads: keep the
    // grid-sync form unless the megakernel is strictly faster.
    CompiledModule candidate;
    candidate.compilerName = module.compilerName;
    candidate.kernels.push_back(std::move(merged));
    candidate.taskGraph = std::move(graph);
    stats.gridSyncUs = simulate(module, device).totalUs;
    stats.megakernelUs = simulate(candidate, device).totalUs;
    if (!(stats.megakernelUs < stats.gridSyncUs)) {
        std::ostringstream why;
        why << "unprofitable: megakernel " << stats.megakernelUs
            << "us >= grid-sync " << stats.gridSyncUs << "us";
        stats.fallbackReason = why.str();
        return stats;
    }

    module = std::move(candidate);
    stats.applied = true;
    return stats;
}

void
MegakernelPass::run(CompileContext &ctx)
{
    if (ctx.options.level < SouffleLevel::kV5)
        return;
    const MegakernelStats stats =
        applyMegakernel(ctx.program(), ctx.analysis(),
                        ctx.options.device, ctx.result.module);
    ctx.counter("megakernelApplied", stats.applied ? 1 : 0);
    ctx.counter("megakernelFallback", stats.applied ? 0 : 1);
    ctx.counter("megakernelTasks", stats.tasks);
    ctx.counter("megakernelEdges", stats.edges);
    ctx.counter("megakernelEdgesPruned", stats.edgesPruned);
    ctx.counter("gridSyncsRemoved", stats.gridSyncsRemoved);
}

} // namespace souffle
