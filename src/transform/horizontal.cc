#include "transform/horizontal.h"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "analysis/analysis.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace souffle {

namespace {

/** Merge-compatibility signature: everything but the leading dim. */
std::string
mergeSignature(const TeProgram &program, const TensorExpr &te)
{
    std::ostringstream os;
    std::vector<int64_t> trailing(te.outShape.begin() + 1,
                                  te.outShape.end());
    os << combinerName(te.combiner) << "|" << te.outRank() << "|"
       << joinToString(trailing, "x") << "|r"
       << joinToString(te.reduceExtents, "x") << "|o"
       << countUnitOps(te.body) << "|n" << te.body->numReads() << "|"
       << dtypeName(program.tensor(te.output).dtype);
    return os.str();
}

/**
 * Rewrite reads of @p slot: multi-dim reads get @p row_offset added to
 * their leading output row; flat reads get @p flat_offset added.
 * Used to redirect consumers of a member output into the concatenated
 * tensor.
 */
ExprPtr
shiftReadsOfSlot(const ExprPtr &expr, int slot, int64_t row_offset,
                 int64_t flat_offset)
{
    switch (expr->kind()) {
      case ExprKind::kConst:
        return expr;
      case ExprKind::kRead: {
        if (expr->readSlot() != slot)
            return expr;
        AffineMap map = expr->readMap();
        if (expr->isFlatRead()) {
            map.addOffset(0, flat_offset);
            return Expr::readFlat(slot, std::move(map));
        }
        map.addOffset(0, row_offset);
        return Expr::read(slot, std::move(map));
      }
      case ExprKind::kUnary:
        return Expr::unary(expr->unaryOp(),
                           shiftReadsOfSlot(expr->lhs(), slot,
                                            row_offset, flat_offset));
      case ExprKind::kBinary:
        return Expr::binary(expr->binaryOp(),
                            shiftReadsOfSlot(expr->lhs(), slot,
                                             row_offset, flat_offset),
                            shiftReadsOfSlot(expr->rhs(), slot,
                                             row_offset, flat_offset));
      case ExprKind::kSelect:
        return Expr::select(expr->predicate(),
                            shiftReadsOfSlot(expr->lhs(), slot,
                                             row_offset, flat_offset),
                            shiftReadsOfSlot(expr->rhs(), slot,
                                             row_offset, flat_offset));
    }
    SOUFFLE_PANIC("unreachable expression kind");
}

/** One merge group with precomputed concat offsets. */
struct MergeGroup
{
    std::vector<int> members;          ///< TE ids, program order
    std::vector<int64_t> offsets;      ///< leading-dim offsets
    int64_t totalLeading = 0;
};

} // namespace

HorizontalStats
horizontalTransform(TeProgram &program, int max_group_size)
{
    HorizontalStats stats;

    // Topological depth of every TE (longest path from the inputs).
    // Grouping only TEs of *equal depth* guarantees both pairwise
    // independence (an edge strictly increases depth) and, crucially,
    // that merging cannot create cycles between groups: a cross-group
    // edge always goes from a lower depth to a higher one. (Greedy
    // pairwise-independence checks are not enough -- two groups can
    // form a cycle through paths that pass between their members.)
    // This is the wavefront criterion of the paper's LSTM case study.
    std::vector<int> depth(program.numTes(), 0);
    for (const auto &te : program.tes()) {
        for (TensorId in : te.inputs) {
            const int producer = program.tensor(in).producer;
            if (producer >= 0)
                depth[te.id] =
                    std::max(depth[te.id], depth[producer] + 1);
        }
    }

    // 1. Group TEs by (compatibility signature, depth).
    std::map<std::string, std::vector<int>> by_signature;
    for (const auto &te : program.tes()) {
        if (te.outRank() == 0)
            continue;
        if (program.tensor(te.output).role == TensorRole::kOutput)
            continue; // keep model outputs as standalone tensors
        by_signature[mergeSignature(program, te) + "|d"
                     + std::to_string(depth[te.id])]
            .push_back(te.id);
    }

    // 2. Form merge groups within each bucket (order-preserving).
    std::vector<MergeGroup> groups;
    std::vector<int> group_of(program.numTes(), -1);
    for (auto &[sig, candidates] : by_signature) {
        for (size_t i = 0; i < candidates.size();) {
            MergeGroup group;
            while (i < candidates.size()
                   && static_cast<int>(group.members.size())
                          < max_group_size) {
                group.members.push_back(candidates[i]);
                ++i;
            }
            if (group.members.size() < 2)
                continue;
            for (int member : group.members) {
                group.offsets.push_back(group.totalLeading);
                group.totalLeading +=
                    program.te(member).outShape[0];
            }
            const int group_id = static_cast<int>(groups.size());
            for (int member : group.members)
                group_of[member] = group_id;
            groups.push_back(std::move(group));
        }
    }
    if (groups.empty())
        return stats;

    // 3. Rebuild the program with merged TEs, topologically ordered
    //    (a merged TE depends on the union of member inputs, so a
    //    simple in-place splice is not generally valid).
    // Node = singleton TE or a whole group. Node id: te id for
    // singletons, numTes()+g for groups.
    const int num_tes = program.numTes();
    auto node_of = [&](int te_id) {
        return group_of[te_id] < 0 ? te_id : num_tes + group_of[te_id];
    };

    // Dependency edges between nodes.
    std::unordered_map<int, std::vector<int>> successors;
    std::unordered_map<int, int> indegree;
    auto add_edge = [&](int from, int to) {
        if (from == to)
            return;
        successors[from].push_back(to);
        ++indegree[to];
    };
    for (const auto &te : program.tes())
        indegree.emplace(node_of(te.id), 0);
    for (const auto &te : program.tes()) {
        for (TensorId in : te.inputs) {
            const int producer = program.tensor(in).producer;
            if (producer >= 0)
                add_edge(node_of(producer), node_of(te.id));
        }
    }
    // De-duplicate edges' indegree contributions.
    indegree.clear();
    for (auto &[node, succ] : successors) {
        std::sort(succ.begin(), succ.end());
        succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
    }
    for (const auto &te : program.tes())
        indegree.emplace(node_of(te.id), 0);
    for (const auto &[node, succ] : successors) {
        for (int next : succ)
            ++indegree[next];
    }

    std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
    for (const auto &[node, degree] : indegree) {
        if (degree == 0)
            ready.push(node);
    }

    TeProgram rebuilt;
    // Old tensor id -> new tensor id.
    std::vector<TensorId> tensor_remap(program.numTensors(), -1);
    // Member output tensor id -> (merged group, offset).
    std::unordered_map<TensorId, std::pair<int, int64_t>> member_out;
    for (size_t g = 0; g < groups.size(); ++g) {
        for (size_t m = 0; m < groups[g].members.size(); ++m) {
            member_out[program.te(groups[g].members[m]).output] = {
                static_cast<int>(g), groups[g].offsets[m]};
        }
    }
    // Merged output tensor id (new program) per group.
    std::vector<TensorId> group_out(groups.size(), -1);

    auto materialize = [&](TensorId old_id) -> TensorId {
        if (tensor_remap[old_id] >= 0)
            return tensor_remap[old_id];
        const TensorDecl &decl = program.tensor(old_id);
        SOUFFLE_CHECK(decl.producer < 0,
                      "materializing unproduced intermediate '"
                          << decl.name << "'");
        tensor_remap[old_id] = rebuilt.addTensor(
            decl.name, decl.shape, decl.dtype, decl.role);
        return tensor_remap[old_id];
    };

    // Remap a TE's inputs/body into the rebuilt program, redirecting
    // reads of member outputs into the merged tensors.
    auto emit_te = [&](const TensorExpr &te, const std::string &name,
                       ExprPtr body, std::vector<TensorId> old_inputs,
                       TensorId new_output) {
        std::vector<TensorId> new_inputs;
        for (size_t slot = 0; slot < old_inputs.size(); ++slot) {
            const TensorId old_in = old_inputs[slot];
            auto it = member_out.find(old_in);
            if (it != member_out.end()) {
                const auto [g, offset] = it->second;
                const int64_t flat_offset =
                    offset
                    * (program.te(groups[g].members[0]).outDomainSize()
                       / program.te(groups[g].members[0]).outShape[0]);
                body = shiftReadsOfSlot(body, static_cast<int>(slot),
                                        offset, flat_offset);
                SOUFFLE_CHECK(group_out[g] >= 0,
                              "merged group used before defined");
                new_inputs.push_back(group_out[g]);
            } else {
                TensorId mapped = tensor_remap[old_in];
                if (mapped < 0)
                    mapped = materialize(old_in);
                new_inputs.push_back(mapped);
            }
        }
        rebuilt.addTe(name, std::move(new_inputs), new_output,
                      te.reduceExtents, te.combiner, std::move(body));
    };

    while (!ready.empty()) {
        const int node = ready.top();
        ready.pop();
        if (node < num_tes) {
            // Singleton TE: copy with remapping.
            const TensorExpr &te = program.te(node);
            const TensorDecl &out = program.tensor(te.output);
            const TensorId new_out = rebuilt.addTensor(
                out.name, out.shape, out.dtype, out.role);
            tensor_remap[te.output] = new_out;
            emit_te(te, te.name, te.body, te.inputs, new_out);
        } else {
            // Merged group.
            const MergeGroup &group = groups[node - num_tes];
            const TensorExpr &first = program.te(group.members[0]);
            std::vector<int64_t> merged_shape = first.outShape;
            merged_shape[0] = group.totalLeading;
            const TensorDecl &first_out = program.tensor(first.output);
            const TensorId new_out = rebuilt.addTensor(
                "hmerge_" + first_out.name, merged_shape,
                first_out.dtype, TensorRole::kIntermediate);
            group_out[node - num_tes] = new_out;

            // Union of member inputs (old ids), shared slots merged.
            std::vector<TensorId> union_inputs;
            std::vector<ExprPtr> member_bodies;
            const int iter_rank = first.iterRank();
            for (size_t m = 0; m < group.members.size(); ++m) {
                const TensorExpr &member =
                    program.te(group.members[m]);
                // Substitute merged index -> member index (shift the
                // leading dim down by the member's offset).
                AffineMap shift = AffineMap::identity(iter_rank);
                shift.addOffset(0, -group.offsets[m]);
                ExprPtr body = member.body->substituteIndices(shift);
                // Remap member slots into the union slot space.
                std::vector<int> remap(member.inputs.size(), 0);
                for (size_t s = 0; s < member.inputs.size(); ++s) {
                    const TensorId in = member.inputs[s];
                    auto it = std::find(union_inputs.begin(),
                                        union_inputs.end(), in);
                    if (it == union_inputs.end()) {
                        remap[s] =
                            static_cast<int>(union_inputs.size());
                        union_inputs.push_back(in);
                    } else {
                        remap[s] = static_cast<int>(
                            it - union_inputs.begin());
                    }
                }
                member_bodies.push_back(body->remapSlots(remap));
            }

            // Nested selects on the leading dim.
            ExprPtr body = member_bodies.back();
            for (int m = static_cast<int>(group.members.size()) - 2;
                 m >= 0; --m) {
                std::vector<int64_t> coefs(iter_rank, 0);
                coefs[0] = 1;
                Predicate pred{AffineCond{
                    coefs, -group.offsets[m + 1], CmpOp::kLT}};
                body = Expr::select(std::move(pred), member_bodies[m],
                                    std::move(body));
            }

            std::ostringstream name;
            name << "hmerge";
            for (int member : group.members)
                name << "_" << member;
            emit_te(first, name.str(), std::move(body), union_inputs,
                    new_out);
            stats.tesMerged +=
                static_cast<int>(group.members.size()) - 1;
            ++stats.groups;
        }
        for (int next : successors[node]) {
            if (--indegree[next] == 0)
                ready.push(next);
        }
    }

    // Materialize any unconsumed graph inputs/params so roles survive.
    for (const auto &decl : program.tensors()) {
        if (decl.producer < 0 && tensor_remap[decl.id] < 0)
            materialize(decl.id);
    }

    SOUFFLE_CHECK(rebuilt.numTes()
                      == program.numTes() - stats.tesMerged - stats.groups
                             + stats.groups,
                  "horizontal rebuild lost TEs: " << rebuilt.numTes()
                      << " vs " << program.numTes());
    stats.groups = static_cast<int>(groups.size());
    rebuilt.validate();
    program = std::move(rebuilt);
    return stats;
}

} // namespace souffle
