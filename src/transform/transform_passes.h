#pragma once

/**
 * @file
 * Pass adapters for the TE-program transformations and planners:
 * horizontal / vertical transformation (paper Sec. 6.1/6.2),
 * resource-aware partitioning into grid-sync subprograms (Sec. 5.4 /
 * 6.3), and the per-stage kernel planner used below V3.
 */

#include "compiler/pass.h"

namespace souffle {

/**
 * Horizontal transformation: merge independent compatible TEs
 * (Sec. 6.1). Group size capped by `ctx.options.horizontalCap`.
 * Sets `ctx.result.horizontalGroups`.
 */
class HorizontalTransformPass : public Pass
{
  public:
    /**
     * @p remap_te_to_op resets `ctx.lowered.teToOp` to a
     * generated-kernel mapping after the rebuild (the Rammer baseline
     * clusters by op kind afterwards; Souffle pipelines never read
     * the stale table).
     */
    explicit HorizontalTransformPass(bool remap_te_to_op = false)
        : remapTeToOp(remap_te_to_op)
    {
    }

    std::string name() const override { return "horizontal-transform"; }
    bool invalidatesAnalysis() const override { return true; }
    void run(CompileContext &ctx) override;

  private:
    bool remapTeToOp;
};

/**
 * Vertical transformation: collapse one-relies-on-one chains by
 * affine-map composition (Sec. 6.2). Sets `ctx.result.verticalMerges`.
 */
class VerticalTransformPass : public Pass
{
  public:
    std::string name() const override { return "vertical-transform"; }
    bool invalidatesAnalysis() const override { return true; }
    void run(CompileContext &ctx) override;
};

/**
 * Resource-aware partitioning (V3+): one kernel plan per subprogram,
 * grid-sync stages inside. Writes `ctx.plan` and
 * `ctx.result.subprograms`.
 */
class PartitionPass : public Pass
{
  public:
    std::string name() const override { return "partition"; }
    void run(CompileContext &ctx) override;
};

/**
 * Per-stage kernel planner (V0..V2): Souffle's code generation
 * without global synchronization -- every register-level stage
 * becomes its own launch-separated kernel. Writes `ctx.plan` and
 * `ctx.result.subprograms`.
 */
class StageKernelsPass : public Pass
{
  public:
    std::string name() const override { return "stage-kernels"; }
    void run(CompileContext &ctx) override;
};

} // namespace souffle
