#pragma once

/**
 * @file
 * Vertical transformation for one-relies-on-one TEs (paper Sec. 6.2).
 *
 * Chains of one-relies-on-one TEs (element-wise arithmetic, reshape,
 * transpose, slice, ...) are collapsed into a single TE by composing
 * their quasi-affine index maps (Eq. 2):
 *
 *   f_{i+1,i}(v) = M_{i+1} (M_i v + c_i) + c_{i+1}
 *
 * This eliminates the intermediate tensors entirely, removing both the
 * kernels and the global-memory round trips between them.
 */

#include "te/program.h"

namespace souffle {

/** Statistics returned by the vertical transformation. */
struct VerticalStats
{
    /** Number of producer TEs inlined into their consumers. */
    int merged = 0;
    /** Fixpoint iterations executed. */
    int rounds = 0;
};

/**
 * Collapse one-relies-on-one producer/consumer chains in @p program
 * (in place). A producer is inlined when it is one-relies-on-one, has
 * a single consumer, and its output is not a model output. Consumers
 * reading through flat (reshape) maps inline only flat-transparent
 * producers. Runs to fixpoint and removes dead TEs.
 */
VerticalStats verticalTransform(TeProgram &program);

} // namespace souffle
