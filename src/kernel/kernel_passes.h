#pragma once

/**
 * @file
 * Pass adapters for kernel-IR construction and the kernel-level
 * optimizations: schedule merging into kernels (paper Sec. 6.4),
 * two-phase atomicAdd reductions (Sec. 6.3), cross-TE instruction
 * pipelining and LRU tensor reuse (Sec. 6.5), and the cost-model
 * guided adaptive-fusion remedy (Sec. 9 "Slowdown").
 */

#include "compiler/pass.h"

namespace souffle {

/**
 * Materializes `ctx.plan` into `ctx.result.module` (named after
 * `ctx.result.name`) via `buildModule`.
 */
class BuildModulePass : public Pass
{
  public:
    std::string name() const override { return "build-module"; }
    void run(CompileContext &ctx) override;
};

/**
 * Two-phase reduction handling (Sec. 6.3): inside a multi-stage
 * kernel, memory-intensive reductions whose consumers all live in the
 * same kernel combine partial results with atomicAdd; only the
 * partial result touches global memory.
 */
class TwoPhaseReductionPass : public Pass
{
  public:
    std::string name() const override { return "two-phase-reduction"; }
    void run(CompileContext &ctx) override;
};

/** Cross-TE async-load/compute overlap (Sec. 6.5). */
class PipelineOptimizePass : public Pass
{
  public:
    std::string name() const override { return "pipeline-loads"; }
    void run(CompileContext &ctx) override;
};

/** LRU software-managed on-chip tensor reuse (Sec. 6.5). */
class ReuseOptimizePass : public Pass
{
  public:
    std::string name() const override { return "reuse-cache"; }
    void run(CompileContext &ctx) override;
};

/**
 * Adaptive fusion: per subprogram, keep the grid-sync mega-kernel
 * only when the cost model says it beats per-stage launches; else
 * split it back (requires `ctx.plan` from the partitioner). Sets
 * `ctx.result.adaptiveSplits`.
 */
class AdaptiveFusionPass : public Pass
{
  public:
    std::string name() const override { return "adaptive-fusion"; }
    void run(CompileContext &ctx) override;
};

} // namespace souffle
