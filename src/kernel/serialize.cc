#include "kernel/serialize.h"

#include <vector>

#include "common/json.h"
#include "common/logging.h"

namespace souffle {

namespace {

// instrKindName (kernel_ir.cc) is reused for writing; this is its
// reverse table. Pipes have no display name elsewhere, so both
// directions live here.

InstrKind
parseInstrKind(const std::string &name)
{
    for (InstrKind kind :
         {InstrKind::kLoadGlobal, InstrKind::kLoadCached,
          InstrKind::kStoreGlobal, InstrKind::kCompute,
          InstrKind::kAtomicAdd, InstrKind::kGridSync,
          InstrKind::kBarrier}) {
        if (name == instrKindName(kind))
            return kind;
    }
    SOUFFLE_FATAL("unknown instruction kind: " << name);
}

const char *
pipeName(ComputePipe pipe)
{
    switch (pipe) {
    case ComputePipe::kTensorCore:
        return "tensor_core";
    case ComputePipe::kFma:
        return "fma";
    case ComputePipe::kAlu:
        return "alu";
    }
    return "?";
}

ComputePipe
parsePipe(const std::string &name)
{
    for (ComputePipe pipe : {ComputePipe::kTensorCore,
                             ComputePipe::kFma, ComputePipe::kAlu}) {
        if (name == pipeName(pipe))
            return pipe;
    }
    SOUFFLE_FATAL("unknown compute pipe: " << name);
}

void
writeTeIds(JsonWriter &w, const std::vector<int> &ids)
{
    w.beginArray();
    for (int id : ids)
        w.value(static_cast<int64_t>(id));
    w.endArray();
}

std::vector<int>
readTeIds(const JsonValue &v)
{
    std::vector<int> ids;
    ids.reserve(v.items().size());
    for (const JsonValue &item : v.items())
        ids.push_back(static_cast<int>(item.asInt()));
    return ids;
}

void
writeInstr(JsonWriter &w, const Instr &instr)
{
    w.beginObject();
    w.field("kind", instrKindName(instr.kind));
    w.field("pipe", pipeName(instr.pipe));
    w.field("bytes", instr.bytes);
    w.field("flops", instr.flops);
    w.field("tensor", static_cast<int64_t>(instr.tensor));
    w.field("overlapped", instr.overlapped);
    w.endObject();
}

Instr
readInstr(const JsonValue &v)
{
    Instr instr;
    instr.kind = parseInstrKind(v.at("kind").asString());
    instr.pipe = parsePipe(v.at("pipe").asString());
    instr.bytes = v.at("bytes").asNumber();
    instr.flops = v.at("flops").asNumber();
    instr.tensor = static_cast<TensorId>(v.at("tensor").asInt());
    instr.overlapped = v.at("overlapped").asBool();
    return instr;
}

void
writeStage(JsonWriter &w, const KernelStage &stage)
{
    w.newline().beginObject();
    w.field("name", stage.name);
    w.key("teIds");
    writeTeIds(w, stage.teIds);
    w.field("numBlocks", stage.numBlocks);
    w.field("threadsPerBlock", stage.threadsPerBlock);
    w.field("sharedMemBytes", stage.sharedMemBytes);
    w.field("regsPerBlock", stage.regsPerBlock);
    w.field("predicated", stage.predicated);
    w.field("flexibleBlocks", stage.flexibleBlocks);
    w.key("instrs").beginArray();
    for (const Instr &instr : stage.instrs)
        writeInstr(w, instr);
    w.endArray();
    w.endObject();
}

KernelStage
readStage(const JsonValue &v)
{
    KernelStage stage;
    stage.name = v.at("name").asString();
    stage.teIds = readTeIds(v.at("teIds"));
    stage.numBlocks = v.at("numBlocks").asInt();
    stage.threadsPerBlock =
        static_cast<int>(v.at("threadsPerBlock").asInt());
    stage.sharedMemBytes = v.at("sharedMemBytes").asInt();
    stage.regsPerBlock = v.at("regsPerBlock").asInt();
    stage.predicated = v.at("predicated").asBool();
    stage.flexibleBlocks = v.at("flexibleBlocks").asBool();
    for (const JsonValue &instr : v.at("instrs").items())
        stage.instrs.push_back(readInstr(instr));
    return stage;
}

TaskEdgeKind
parseTaskEdgeKind(const std::string &name)
{
    for (TaskEdgeKind kind :
         {TaskEdgeKind::kRaw, TaskEdgeKind::kWar, TaskEdgeKind::kWaw,
          TaskEdgeKind::kAlias}) {
        if (name == taskEdgeKindName(kind))
            return kind;
    }
    SOUFFLE_FATAL("unknown task edge kind: " << name);
}

void
writeTaskGraph(JsonWriter &w, const TaskGraph &graph)
{
    w.newline().key("taskGraph").beginObject();
    w.key("tasks").beginArray();
    for (const TaskDesc &task : graph.tasks) {
        w.newline().beginObject();
        w.field("name", task.name);
        w.field("stage", static_cast<int64_t>(task.stage));
        w.field("shards", static_cast<int64_t>(task.shards));
        w.field("blocks", task.blocks);
        w.endObject();
    }
    w.endArray();
    w.newline().key("edges").beginArray();
    for (const TaskEdge &edge : graph.edges) {
        w.beginObject();
        w.field("from", static_cast<int64_t>(edge.from));
        w.field("to", static_cast<int64_t>(edge.to));
        w.field("tensor", static_cast<int64_t>(edge.tensor));
        w.field("kind", taskEdgeKindName(edge.kind));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

TaskGraph
readTaskGraph(const JsonValue &v)
{
    TaskGraph graph;
    for (const JsonValue &t : v.at("tasks").items()) {
        TaskDesc task;
        task.name = t.at("name").asString();
        task.stage = static_cast<int>(t.at("stage").asInt());
        task.shards = static_cast<int>(t.at("shards").asInt());
        task.blocks = t.at("blocks").asInt();
        graph.tasks.push_back(std::move(task));
    }
    for (const JsonValue &e : v.at("edges").items()) {
        TaskEdge edge;
        edge.from = static_cast<int>(e.at("from").asInt());
        edge.to = static_cast<int>(e.at("to").asInt());
        edge.tensor = static_cast<TensorId>(e.at("tensor").asInt());
        edge.kind = parseTaskEdgeKind(e.at("kind").asString());
        graph.edges.push_back(edge);
    }
    return graph;
}

} // namespace

std::string
serializeCompiledModule(const CompiledModule &module)
{
    JsonWriter w(JsonWriter::Style::kCompact);
    w.setDoublePrecision(17);
    w.beginObject();
    // Version 2 adds the optional task graph (V5 persistent
    // megakernel). Modules without one keep writing version 1, so
    // pre-V5 artifacts stay byte-identical across the format bump.
    w.field("version", module.megakernel() ? 2 : 1);
    w.field("compiler", module.compilerName);
    w.newline().key("kernels").beginArray();
    for (const Kernel &kernel : module.kernels) {
        w.newline().beginObject();
        w.field("name", kernel.name);
        w.field("usesLibrary", kernel.usesLibrary);
        w.field("libraryTimeFactor", kernel.libraryTimeFactor);
        w.key("stages").beginArray();
        for (const KernelStage &stage : kernel.stages)
            writeStage(w, stage);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    if (module.megakernel())
        writeTaskGraph(w, module.taskGraph);
    w.newline().endObject();
    return w.str();
}

CompiledModule
deserializeCompiledModule(const std::string &text)
{
    const JsonValue doc = parseJson(text);
    const int64_t version = doc.at("version").asInt();
    SOUFFLE_REQUIRE(version == 1 || version == 2,
                    "unsupported module format version: " << version);

    CompiledModule module;
    module.compilerName = doc.at("compiler").asString();
    for (const JsonValue &k : doc.at("kernels").items()) {
        Kernel kernel;
        kernel.name = k.at("name").asString();
        kernel.usesLibrary = k.at("usesLibrary").asBool();
        kernel.libraryTimeFactor =
            k.at("libraryTimeFactor").asNumber();
        for (const JsonValue &stage : k.at("stages").items())
            kernel.stages.push_back(readStage(stage));
        module.kernels.push_back(std::move(kernel));
    }
    if (const JsonValue *graph =
            version >= 2 ? doc.find("taskGraph") : nullptr)
        module.taskGraph = readTaskGraph(*graph);
    return module;
}

std::string
serializeModulePlan(const ModulePlan &plan)
{
    JsonWriter w(JsonWriter::Style::kCompact);
    w.setDoublePrecision(17);
    w.beginObject();
    w.field("version", 1);
    w.newline().key("kernels").beginArray();
    for (const KernelPlan &kernel : plan.kernels) {
        w.newline().beginObject();
        w.field("name", kernel.name);
        w.field("library", kernel.library);
        w.field("libraryTimeFactor", kernel.libraryTimeFactor);
        w.key("stages").beginArray();
        for (const StagePlan &stage : kernel.stages)
            writeTeIds(w, stage.tes);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.newline().endObject();
    return w.str();
}

ModulePlan
deserializeModulePlan(const std::string &text)
{
    const JsonValue doc = parseJson(text);
    const int64_t version = doc.at("version").asInt();
    SOUFFLE_REQUIRE(version == 1,
                    "unsupported plan format version: " << version);

    ModulePlan plan;
    for (const JsonValue &k : doc.at("kernels").items()) {
        KernelPlan kernel;
        kernel.name = k.at("name").asString();
        kernel.library = k.at("library").asBool();
        kernel.libraryTimeFactor =
            k.at("libraryTimeFactor").asNumber();
        for (const JsonValue &stage : k.at("stages").items())
            kernel.stages.push_back(StagePlan{readTeIds(stage)});
        plan.kernels.push_back(std::move(kernel));
    }
    return plan;
}

} // namespace souffle
