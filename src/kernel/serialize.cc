#include "kernel/serialize.h"

#include <vector>

#include "common/json.h"
#include "common/logging.h"

namespace souffle {

namespace {

// instrKindName (kernel_ir.cc) is reused for writing; this is its
// reverse table. Pipes have no display name elsewhere, so both
// directions live here.

InstrKind
parseInstrKind(const std::string &name)
{
    for (InstrKind kind :
         {InstrKind::kLoadGlobal, InstrKind::kLoadCached,
          InstrKind::kStoreGlobal, InstrKind::kCompute,
          InstrKind::kAtomicAdd, InstrKind::kGridSync,
          InstrKind::kBarrier}) {
        if (name == instrKindName(kind))
            return kind;
    }
    SOUFFLE_FATAL("unknown instruction kind: " << name);
}

const char *
pipeName(ComputePipe pipe)
{
    switch (pipe) {
    case ComputePipe::kTensorCore:
        return "tensor_core";
    case ComputePipe::kFma:
        return "fma";
    case ComputePipe::kAlu:
        return "alu";
    }
    return "?";
}

ComputePipe
parsePipe(const std::string &name)
{
    for (ComputePipe pipe : {ComputePipe::kTensorCore,
                             ComputePipe::kFma, ComputePipe::kAlu}) {
        if (name == pipeName(pipe))
            return pipe;
    }
    SOUFFLE_FATAL("unknown compute pipe: " << name);
}

void
writeTeIds(JsonWriter &w, const std::vector<int> &ids)
{
    w.beginArray();
    for (int id : ids)
        w.value(static_cast<int64_t>(id));
    w.endArray();
}

std::vector<int>
readTeIds(const JsonValue &v)
{
    std::vector<int> ids;
    ids.reserve(v.items().size());
    for (const JsonValue &item : v.items())
        ids.push_back(static_cast<int>(item.asInt()));
    return ids;
}

void
writeInstr(JsonWriter &w, const Instr &instr)
{
    w.beginObject();
    w.field("kind", instrKindName(instr.kind));
    w.field("pipe", pipeName(instr.pipe));
    w.field("bytes", instr.bytes);
    w.field("flops", instr.flops);
    w.field("tensor", static_cast<int64_t>(instr.tensor));
    w.field("overlapped", instr.overlapped);
    w.endObject();
}

Instr
readInstr(const JsonValue &v)
{
    Instr instr;
    instr.kind = parseInstrKind(v.at("kind").asString());
    instr.pipe = parsePipe(v.at("pipe").asString());
    instr.bytes = v.at("bytes").asNumber();
    instr.flops = v.at("flops").asNumber();
    instr.tensor = static_cast<TensorId>(v.at("tensor").asInt());
    instr.overlapped = v.at("overlapped").asBool();
    return instr;
}

void
writeStage(JsonWriter &w, const KernelStage &stage)
{
    w.newline().beginObject();
    w.field("name", stage.name);
    w.key("teIds");
    writeTeIds(w, stage.teIds);
    w.field("numBlocks", stage.numBlocks);
    w.field("threadsPerBlock", stage.threadsPerBlock);
    w.field("sharedMemBytes", stage.sharedMemBytes);
    w.field("regsPerBlock", stage.regsPerBlock);
    w.field("predicated", stage.predicated);
    w.field("flexibleBlocks", stage.flexibleBlocks);
    w.key("instrs").beginArray();
    for (const Instr &instr : stage.instrs)
        writeInstr(w, instr);
    w.endArray();
    w.endObject();
}

KernelStage
readStage(const JsonValue &v)
{
    KernelStage stage;
    stage.name = v.at("name").asString();
    stage.teIds = readTeIds(v.at("teIds"));
    stage.numBlocks = v.at("numBlocks").asInt();
    stage.threadsPerBlock =
        static_cast<int>(v.at("threadsPerBlock").asInt());
    stage.sharedMemBytes = v.at("sharedMemBytes").asInt();
    stage.regsPerBlock = v.at("regsPerBlock").asInt();
    stage.predicated = v.at("predicated").asBool();
    stage.flexibleBlocks = v.at("flexibleBlocks").asBool();
    for (const JsonValue &instr : v.at("instrs").items())
        stage.instrs.push_back(readInstr(instr));
    return stage;
}

} // namespace

std::string
serializeCompiledModule(const CompiledModule &module)
{
    JsonWriter w(JsonWriter::Style::kCompact);
    w.setDoublePrecision(17);
    w.beginObject();
    w.field("version", 1);
    w.field("compiler", module.compilerName);
    w.newline().key("kernels").beginArray();
    for (const Kernel &kernel : module.kernels) {
        w.newline().beginObject();
        w.field("name", kernel.name);
        w.field("usesLibrary", kernel.usesLibrary);
        w.field("libraryTimeFactor", kernel.libraryTimeFactor);
        w.key("stages").beginArray();
        for (const KernelStage &stage : kernel.stages)
            writeStage(w, stage);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.newline().endObject();
    return w.str();
}

CompiledModule
deserializeCompiledModule(const std::string &text)
{
    const JsonValue doc = parseJson(text);
    const int64_t version = doc.at("version").asInt();
    SOUFFLE_REQUIRE(version == 1,
                    "unsupported module format version: " << version);

    CompiledModule module;
    module.compilerName = doc.at("compiler").asString();
    for (const JsonValue &k : doc.at("kernels").items()) {
        Kernel kernel;
        kernel.name = k.at("name").asString();
        kernel.usesLibrary = k.at("usesLibrary").asBool();
        kernel.libraryTimeFactor =
            k.at("libraryTimeFactor").asNumber();
        for (const JsonValue &stage : k.at("stages").items())
            kernel.stages.push_back(readStage(stage));
        module.kernels.push_back(std::move(kernel));
    }
    return module;
}

std::string
serializeModulePlan(const ModulePlan &plan)
{
    JsonWriter w(JsonWriter::Style::kCompact);
    w.setDoublePrecision(17);
    w.beginObject();
    w.field("version", 1);
    w.newline().key("kernels").beginArray();
    for (const KernelPlan &kernel : plan.kernels) {
        w.newline().beginObject();
        w.field("name", kernel.name);
        w.field("library", kernel.library);
        w.field("libraryTimeFactor", kernel.libraryTimeFactor);
        w.key("stages").beginArray();
        for (const StagePlan &stage : kernel.stages)
            writeTeIds(w, stage.tes);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.newline().endObject();
    return w.str();
}

ModulePlan
deserializeModulePlan(const std::string &text)
{
    const JsonValue doc = parseJson(text);
    const int64_t version = doc.at("version").asInt();
    SOUFFLE_REQUIRE(version == 1,
                    "unsupported plan format version: " << version);

    ModulePlan plan;
    for (const JsonValue &k : doc.at("kernels").items()) {
        KernelPlan kernel;
        kernel.name = k.at("name").asString();
        kernel.library = k.at("library").asBool();
        kernel.libraryTimeFactor =
            k.at("libraryTimeFactor").asNumber();
        for (const JsonValue &stage : k.at("stages").items())
            kernel.stages.push_back(StagePlan{readTeIds(stage)});
        plan.kernels.push_back(std::move(kernel));
    }
    return plan;
}

} // namespace souffle
