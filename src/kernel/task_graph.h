#pragma once

/**
 * @file
 * Task-graph form of a compiled module (the persistent-megakernel
 * runtime, MPK-style — PAPERS.md arXiv 2512.22219).
 *
 * The V3/V4 execution model serializes a kernel's stages with
 * grid.sync(): every block of the cooperative launch waits at every
 * stage boundary, even when the next stage depends on only one of
 * many predecessors. The megakernel transform (transform/megakernel.h)
 * replaces that model: the *whole* module becomes one persistent
 * kernel whose worker blocks drain a task graph. Each task is one
 * kernel stage, split into up to `shards` output-tile shards that
 * different SMs execute concurrently; each edge is a dependence the
 * scheduler enforces with a device-memory event (the producer's last
 * finishing shard signals, every consumer shard waits) instead of a
 * whole-grid barrier.
 *
 * Granularity: tasks and edges live at the *stage* level. Shards of
 * one stage are mutually independent by construction (a stage's
 * blocks already partition its output tiles), so per-shard edges
 * would square the edge count without adding ordering information —
 * a task is ready when every shard of every predecessor stage has
 * completed.
 *
 * Consumers: the per-SM device simulator (gpu/sim.h), the
 * `task-graph-dep` lint rule (every dataflow DepEdge must be covered
 * by an edge/path here or by intra-task program order), the C backend
 * (per-task functions executed on the ThreadPool), and the module
 * serializer (format version 2).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "te/tensor.h"

namespace souffle {

/** One schedulable task: a stage of the persistent kernel. */
struct TaskDesc
{
    /** Stage name (diagnostics and trace labels). */
    std::string name;
    /** Stage index inside the persistent kernel. */
    int stage = 0;
    /** Parallel output-tile shards (1..numSms). */
    int shards = 1;
    /** Total blocks across all shards (the stage's launch grid). */
    int64_t blocks = 1;
};

/** Why two tasks are ordered. */
enum class TaskEdgeKind : uint8_t {
    kRaw,   ///< consumer reads a tensor the producer wrote
    kWar,   ///< writer overwrites a tensor the predecessor read
    kWaw,   ///< both tasks write the same tensor
    kAlias, ///< tasks touch distinct tensors aliased by the memory plan
};

std::string taskEdgeKindName(TaskEdgeKind kind);

/** One dependence edge: task `from` must complete before `to` starts. */
struct TaskEdge
{
    int from = 0;
    int to = 0;
    /** Tensor carrying the dependence (-1 for kAlias edges). */
    TensorId tensor = -1;
    TaskEdgeKind kind = TaskEdgeKind::kRaw;

    std::string toString() const;
};

/**
 * The compiled scheduling decision: tasks in stage order plus the
 * dependence edges the on-device scheduler enforces with events.
 * Empty on every module below V5 and on V5 fallbacks.
 */
struct TaskGraph
{
    std::vector<TaskDesc> tasks;
    std::vector<TaskEdge> edges;

    bool empty() const { return tasks.empty(); }
    int numTasks() const { return static_cast<int>(tasks.size()); }
    int numEdges() const { return static_cast<int>(edges.size()); }

    /** Deduplicated predecessor lists, one per task, each sorted. */
    std::vector<std::vector<int>> predecessors() const;
    /** Deduplicated successor lists, one per task, each sorted. */
    std::vector<std::vector<int>> successors() const;

    std::string toString() const;
};

/**
 * Transitive-closure reachability over a task graph, for coverage
 * queries: a dependence def-stage -> use-stage is ordered iff the
 * graph reaches use from def. Built once (BFS per task over the
 * deduplicated successor lists); queries are O(1) bit tests.
 */
class TaskGraphReachability
{
  public:
    explicit TaskGraphReachability(const TaskGraph &graph);

    /** True iff an edge path orders task @p from before task @p to. */
    bool reaches(int from, int to) const;

  private:
    int numTasks = 0;
    /** closure[from * numTasks + to] */
    std::vector<bool> closure;
};

} // namespace souffle
