#pragma once

/**
 * @file
 * Kernel-level IR (the TensorIR analogue of paper Sec. 6.4/6.5).
 *
 * A compiled program is a sequence of kernels; each kernel is a
 * sequence of *stages* separated by grid-wide synchronization. A stage
 * covers one or more TEs fused at the register/shared-memory level
 * (schedule propagation), and carries an abstract instruction stream:
 * global<->shared data movement, compute on a pipe, atomics and
 * barriers. The timing simulator charges these instructions against
 * the device model; the reuse and pipelining optimizations of Sec. 6.5
 * are rewrites of this instruction stream.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/device.h"
#include "kernel/task_graph.h"
#include "te/tensor.h"

namespace souffle {

/** Abstract kernel instruction kinds. */
enum class InstrKind : uint8_t {
    kLoadGlobal,  ///< ldg2s: global memory -> shared/registers
    kLoadCached,  ///< served from the software-managed shared cache
    kStoreGlobal, ///< sts2g: shared/registers -> global memory
    kCompute,     ///< arithmetic on a compute pipe
    kAtomicAdd,   ///< cross-block reduction through global atomics
    kGridSync,    ///< cooperative grid.sync()
    kBarrier,     ///< block-level __syncthreads()
};

std::string instrKindName(InstrKind kind);

/** One abstract instruction; byte/flop fields are program totals. */
struct Instr
{
    InstrKind kind = InstrKind::kCompute;
    ComputePipe pipe = ComputePipe::kAlu;
    /** Bytes moved (loads/stores/atomics). */
    double bytes = 0.0;
    /** FLOPs executed (compute). */
    double flops = 0.0;
    /** Tensor this instruction touches, if any. */
    TensorId tensor = -1;
    /**
     * True if this load is issued asynchronously and overlapped with
     * the *previous* stage's compute (cross-TE pipelining, Sec. 6.5).
     */
    bool overlapped = false;
};

/** A kernel stage: TEs fused at the register level. */
struct KernelStage
{
    std::string name;
    /** TEs covered by this stage, in program order. */
    std::vector<int> teIds;
    int64_t numBlocks = 1;
    int threadsPerBlock = 256;
    int64_t sharedMemBytes = 0;
    int64_t regsPerBlock = 0;
    /** Wrapped in `if (blockIdx < ...)` due to launch-dim mismatch. */
    bool predicated = false;
    /**
     * All fused TEs use grid-stride loops, so the stage can execute
     * correctly with any block count (lets the kernel fit one
     * cooperative wave).
     */
    bool flexibleBlocks = false;
    std::vector<Instr> instrs;
};

/** One GPU kernel: stages separated by grid synchronization. */
struct Kernel
{
    std::string name;
    std::vector<KernelStage> stages;
    /**
     * Closed-source library implementation (cuBLAS/cuDNN style, used
     * by the TensorRT/XLA baselines): stage times are scaled by
     * `libraryTimeFactor` and the kernel cannot be fused with others.
     */
    bool usesLibrary = false;
    double libraryTimeFactor = 1.0;

    /** Launch block count: max over stages. */
    int64_t numBlocks() const;
    int threadsPerBlock() const;
    /** Static shared memory: max over stages. */
    int64_t sharedMemBytes() const;
    int64_t regsPerBlock() const;
    /** Number of grid.sync() instructions across all stages. */
    int gridSyncCount() const;
    /** All TE ids covered by the kernel. */
    std::vector<int> teIds() const;

    std::string toString() const;
};

/** A fully compiled program: the executable the simulator runs. */
struct CompiledModule
{
    std::string compilerName;
    std::vector<Kernel> kernels;
    /**
     * Non-empty on V5 modules: the whole program is one persistent
     * kernel whose stages execute as the tasks of this graph, with
     * event signal/wait on the edges instead of grid.sync() between
     * stages (see kernel/task_graph.h). Empty below V5 and when the
     * megakernel transform fell back to the grid-sync form.
     */
    TaskGraph taskGraph;

    int numKernels() const { return static_cast<int>(kernels.size()); }
    /** True when the module executes as a persistent megakernel. */
    bool megakernel() const { return !taskGraph.empty(); }
    std::string toString() const;
};

} // namespace souffle
