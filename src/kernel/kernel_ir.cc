#include "kernel/kernel_ir.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace souffle {

std::string
instrKindName(InstrKind kind)
{
    switch (kind) {
      case InstrKind::kLoadGlobal:
        return "ldg2s";
      case InstrKind::kLoadCached:
        return "lds";
      case InstrKind::kStoreGlobal:
        return "sts2g";
      case InstrKind::kCompute:
        return "compute";
      case InstrKind::kAtomicAdd:
        return "atomic_add";
      case InstrKind::kGridSync:
        return "grid.sync";
      case InstrKind::kBarrier:
        return "barrier";
    }
    return "?";
}

int64_t
Kernel::numBlocks() const
{
    int64_t blocks = 1;
    for (const auto &stage : stages)
        blocks = std::max(blocks, stage.numBlocks);
    return blocks;
}

int
Kernel::threadsPerBlock() const
{
    int threads = 1;
    for (const auto &stage : stages)
        threads = std::max(threads, stage.threadsPerBlock);
    return threads;
}

int64_t
Kernel::sharedMemBytes() const
{
    int64_t bytes = 0;
    for (const auto &stage : stages)
        bytes = std::max(bytes, stage.sharedMemBytes);
    return bytes;
}

int64_t
Kernel::regsPerBlock() const
{
    int64_t regs = 0;
    for (const auto &stage : stages)
        regs = std::max(regs, stage.regsPerBlock);
    return regs;
}

int
Kernel::gridSyncCount() const
{
    int count = 0;
    for (const auto &stage : stages) {
        for (const auto &instr : stage.instrs) {
            if (instr.kind == InstrKind::kGridSync)
                ++count;
        }
    }
    return count;
}

std::vector<int>
Kernel::teIds() const
{
    std::vector<int> ids;
    for (const auto &stage : stages)
        ids.insert(ids.end(), stage.teIds.begin(), stage.teIds.end());
    return ids;
}

std::string
Kernel::toString() const
{
    std::ostringstream os;
    os << "kernel " << name << " <<<" << numBlocks() << ", "
       << threadsPerBlock() << ", " << sharedMemBytes() << "B>>>";
    if (usesLibrary)
        os << " [library x" << libraryTimeFactor << "]";
    os << "\n";
    for (const auto &stage : stages) {
        os << "  stage " << stage.name << " (blocks=" << stage.numBlocks
           << (stage.predicated ? ", predicated" : "") << ")\n";
        for (const auto &instr : stage.instrs) {
            os << "    " << instrKindName(instr.kind);
            if (instr.bytes > 0)
                os << " " << bytesToString(instr.bytes);
            if (instr.flops > 0)
                os << " " << instr.flops << " flops";
            if (instr.tensor >= 0)
                os << " t" << instr.tensor;
            if (instr.overlapped)
                os << " [async-overlap]";
            os << "\n";
        }
    }
    return os.str();
}

std::string
CompiledModule::toString() const
{
    std::ostringstream os;
    os << "CompiledModule(" << compilerName << "): " << kernels.size()
       << " kernels\n";
    for (const auto &kernel : kernels)
        os << kernel.toString();
    if (megakernel())
        os << taskGraph.toString();
    return os.str();
}

} // namespace souffle
