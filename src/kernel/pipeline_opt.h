#pragma once

/**
 * @file
 * Instruction-level pipelining across TE boundaries (paper Sec. 6.5).
 *
 * Inside a multi-stage kernel, global loads of tensors that are *not*
 * produced within the kernel (weights, external activations) carry no
 * RAW dependence on the preceding stage, so they can be issued as
 * asynchronous copies (LDGSTS on Ampere) while the previous stage is
 * still computing -- the GEMM2/GEMM3 pipeline of paper Fig. 1(d).
 * Loads of tensors produced by an earlier stage of the same kernel
 * must wait for the grid sync and stay synchronous.
 */

#include "kernel/kernel_ir.h"
#include "te/program.h"

namespace souffle {

/** Statistics of the pipelining pass. */
struct PipelineStats
{
    int loadsOverlapped = 0;
    double bytesOverlapped = 0.0;
};

/**
 * Mark overlappable loads in @p module (in place). @p program supplies
 * producer information for each tensor.
 */
PipelineStats pipelineOptimize(CompiledModule &module,
                               const TeProgram &program);

} // namespace souffle
