#include "kernel/reuse_opt.h"

#include <list>
#include <unordered_map>

#include "common/logging.h"

namespace souffle {

int64_t
reuseCacheCapacity(const Kernel &kernel, const DeviceSpec &device)
{
    // Shared memory left over after the kernel's working tiles, across
    // all SMs, plus half the register file (accumulator-resident
    // buffers). This is the aggregate on-chip capacity cooperating
    // blocks can dedicate to the software cache.
    const int64_t spare_smem_per_sm = std::max<int64_t>(
        0, device.sharedMemPerSmBytes - kernel.sharedMemBytes());
    const int64_t reg_bytes_per_sm = device.regsPerSm * 4 / 2;
    return (spare_smem_per_sm + reg_bytes_per_sm) * device.numSms;
}

namespace {

/** Simple LRU cache of tensor buffers. */
class LruCache
{
  public:
    explicit LruCache(int64_t capacity) : capacity(capacity) {}

    bool contains(TensorId id) const { return entries.count(id) > 0; }

    void
    touch(TensorId id)
    {
        auto it = entries.find(id);
        if (it == entries.end())
            return;
        order.erase(it->second.pos);
        order.push_front(id);
        it->second.pos = order.begin();
    }

    /** Insert (or refresh) a buffer; returns evictions performed. */
    int
    insert(TensorId id, int64_t bytes)
    {
        if (bytes > capacity)
            return 0; // cannot ever be resident
        auto it = entries.find(id);
        if (it != entries.end()) {
            touch(id);
            return 0;
        }
        int evictions = 0;
        while (used + bytes > capacity && !order.empty()) {
            const TensorId victim = order.back();
            order.pop_back();
            used -= entries.at(victim).bytes;
            entries.erase(victim);
            ++evictions;
        }
        if (used + bytes > capacity)
            return evictions;
        order.push_front(id);
        entries.emplace(id, Entry{bytes, order.begin()});
        used += bytes;
        return evictions;
    }

  private:
    struct Entry
    {
        int64_t bytes;
        std::list<TensorId>::iterator pos;
    };

    int64_t capacity;
    int64_t used = 0;
    std::list<TensorId> order;
    std::unordered_map<TensorId, Entry> entries;
};

} // namespace

ReuseStats
reuseOptimize(CompiledModule &module, const TeProgram &program,
              const DeviceSpec &device)
{
    ReuseStats stats;
    for (auto &kernel : module.kernels) {
        if (kernel.stages.size() < 2)
            continue; // no cross-stage reuse inside one stage
        LruCache cache(reuseCacheCapacity(kernel, device));
        for (auto &stage : kernel.stages) {
            int evictions = 0;
            for (auto &instr : stage.instrs) {
                switch (instr.kind) {
                  case InstrKind::kLoadGlobal: {
                    if (instr.tensor < 0)
                        break;
                    if (cache.contains(instr.tensor)) {
                        instr.kind = InstrKind::kLoadCached;
                        instr.overlapped = false;
                        ++stats.loadsCached;
                        stats.bytesSaved += instr.bytes;
                        cache.touch(instr.tensor);
                    } else {
                        evictions += cache.insert(
                            instr.tensor,
                            program.tensor(instr.tensor).bytes());
                    }
                    break;
                  }
                  case InstrKind::kCompute:
                  case InstrKind::kStoreGlobal:
                  case InstrKind::kAtomicAdd:
                    // Produced data is on-chip right after computation.
                    if (instr.tensor >= 0) {
                        evictions += cache.insert(
                            instr.tensor,
                            program.tensor(instr.tensor).bytes());
                    }
                    break;
                  default:
                    break;
                }
            }
            // Spills add a memory barrier (paper: "spilling the
            // shared memory ... adding a memory barrier"). Evicted
            // buffers are never dirty here -- every produced tensor
            // keeps its global store -- so one barrier per stage with
            // evictions bounds the cost.
            if (evictions > 0) {
                Instr barrier;
                barrier.kind = InstrKind::kBarrier;
                stage.instrs.push_back(barrier);
            }
            stats.evictions += evictions;
        }
    }
    return stats;
}

} // namespace souffle
