#include "kernel/build.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace souffle {

ModulePlan
ModulePlan::unfused(const TeProgram &program)
{
    ModulePlan plan;
    for (const auto &te : program.tes()) {
        KernelPlan kernel;
        kernel.name = te.name;
        kernel.stages.push_back(StagePlan{{te.id}});
        plan.kernels.push_back(std::move(kernel));
    }
    return plan;
}

namespace {

ComputePipe
pipeFor(const TensorExpr &te, const TeInfo &info, const Schedule &sched)
{
    if (sched.useTensorCore)
        return ComputePipe::kTensorCore;
    if (te.hasReduce() && info.computeIntensive)
        return ComputePipe::kFma;
    return ComputePipe::kAlu;
}

KernelStage
buildStage(const TeProgram &program, const GlobalAnalysis &analysis,
           const std::vector<Schedule> &schedules, const StagePlan &plan,
           const std::unordered_set<int> &stage_set)
{
    KernelStage stage;
    stage.flexibleBlocks = true;
    for (int te_id : plan.tes) {
        if (!schedules.at(te_id).gridStride)
            stage.flexibleBlocks = false;
        if (!stage.name.empty())
            stage.name += "+";
        stage.name += program.te(te_id).name;
        stage.teIds.push_back(te_id);
        const Schedule &sched = schedules.at(te_id);
        stage.numBlocks = std::max(stage.numBlocks, sched.numBlocks);
        stage.threadsPerBlock =
            std::max(stage.threadsPerBlock, sched.threadsPerBlock);
        stage.sharedMemBytes =
            std::max(stage.sharedMemBytes, sched.sharedMemBytes);
        stage.regsPerBlock =
            std::max(stage.regsPerBlock, sched.regsPerBlock());
    }

    // Loads: external inputs, deduplicated per tensor (fused TEs share
    // a single staging of a common operand).
    std::unordered_map<TensorId, double> load_bytes;
    for (int te_id : plan.tes) {
        const TensorExpr &te = program.te(te_id);
        for (size_t slot = 0; slot < te.inputs.size(); ++slot) {
            const TensorId in = te.inputs[slot];
            const int producer = program.tensor(in).producer;
            if (producer >= 0 && stage_set.count(producer))
                continue; // register-level fusion: no traffic
            const int64_t elems = inputFootprintElems(
                program, te, static_cast<int>(slot));
            const double bytes = static_cast<double>(
                elems * dtypeBytes(program.tensor(in).dtype));
            auto [it, inserted] = load_bytes.emplace(in, bytes);
            if (!inserted)
                it->second = std::max(it->second, bytes);
        }
    }
    // Emit loads in a deterministic order (by tensor id).
    std::vector<TensorId> load_order;
    for (const auto &[tensor, bytes] : load_bytes)
        load_order.push_back(tensor);
    std::sort(load_order.begin(), load_order.end());
    for (TensorId tensor : load_order) {
        Instr instr;
        instr.kind = InstrKind::kLoadGlobal;
        instr.bytes = load_bytes[tensor];
        instr.tensor = tensor;
        stage.instrs.push_back(instr);
    }

    // Compute, one instruction per TE (program order). A consumer
    // fused behind a one-relies-on-many producer needs the block's
    // partial reduction complete before it reads, so a __syncthreads()
    // barrier separates it from the producer (paper Sec. 6.3; the
    // grid-sync-race lint rule checks this invariant).
    std::unordered_set<TensorId> pending_reduce_outputs;
    for (int te_id : plan.tes) {
        const TensorExpr &te = program.te(te_id);
        const TeInfo &info = analysis.teInfo(te_id);
        bool needs_barrier = false;
        for (TensorId in : te.inputs) {
            if (pending_reduce_outputs.count(in)) {
                needs_barrier = true;
                break;
            }
        }
        if (needs_barrier) {
            Instr barrier;
            barrier.kind = InstrKind::kBarrier;
            stage.instrs.push_back(barrier);
            pending_reduce_outputs.clear();
        }
        Instr instr;
        instr.kind = InstrKind::kCompute;
        instr.pipe = pipeFor(te, info, schedules.at(te_id));
        instr.flops = static_cast<double>(info.flops);
        instr.tensor = te.output;
        stage.instrs.push_back(instr);
        if (te.hasReduce())
            pending_reduce_outputs.insert(te.output);
    }

    // Stores: outputs visible outside this stage.
    for (int te_id : plan.tes) {
        const TensorExpr &te = program.te(te_id);
        const TensorDecl &out = program.tensor(te.output);
        bool external = out.role == TensorRole::kOutput;
        for (int consumer : analysis.consumers(te.output)) {
            if (!stage_set.count(consumer)) {
                external = true;
                break;
            }
        }
        if (!external)
            continue;
        Instr instr;
        instr.kind = InstrKind::kStoreGlobal;
        instr.bytes = static_cast<double>(out.bytes());
        instr.tensor = te.output;
        stage.instrs.push_back(instr);
    }
    return stage;
}

} // namespace

std::string
describePlanCoverageViolation(const TeProgram &program,
                              const ModulePlan &plan)
{
    std::vector<int> sorted;
    for (const auto &kernel : plan.kernels) {
        for (const auto &stage : kernel.stages) {
            if (stage.tes.empty()) {
                return "kernel plan '" + kernel.name
                       + "' contains an empty stage";
            }
            sorted.insert(sorted.end(), stage.tes.begin(),
                          stage.tes.end());
        }
    }
    std::sort(sorted.begin(), sorted.end());
    if (static_cast<int>(sorted.size()) != program.numTes()) {
        return "plan covers " + std::to_string(sorted.size())
               + " TEs, program has "
               + std::to_string(program.numTes());
    }
    for (int i = 0; i < static_cast<int>(sorted.size()); ++i) {
        if (sorted[i] != i)
            return "plan TE coverage is not a bijection";
    }
    return "";
}

CompiledModule
buildModule(const TeProgram &program, const GlobalAnalysis &analysis,
            const std::vector<Schedule> &schedules,
            const ModulePlan &plan, const DeviceSpec &device,
            const std::string &compiler_name)
{
    SOUFFLE_CHECK(static_cast<int>(schedules.size()) == program.numTes(),
                  "schedules must cover the whole program");

    const std::string violation =
        describePlanCoverageViolation(program, plan);
    SOUFFLE_CHECK(violation.empty(), violation);

    CompiledModule module;
    module.compilerName = compiler_name;
    for (const auto &kernel_plan : plan.kernels) {
        module.kernels.push_back(buildKernel(program, analysis,
                                             schedules, kernel_plan,
                                             device));
    }
    return module;
}

Kernel
buildKernel(const TeProgram &program, const GlobalAnalysis &analysis,
            const std::vector<Schedule> &schedules,
            const KernelPlan &kernel_plan, const DeviceSpec &device)
{
    Kernel kernel;
    kernel.name = kernel_plan.name;
    kernel.usesLibrary = kernel_plan.library;
    kernel.libraryTimeFactor = kernel_plan.libraryTimeFactor;

    for (size_t s = 0; s < kernel_plan.stages.size(); ++s) {
        std::unordered_set<int> stage_set(
            kernel_plan.stages[s].tes.begin(),
            kernel_plan.stages[s].tes.end());
        KernelStage stage = buildStage(program, analysis, schedules,
                                       kernel_plan.stages[s], stage_set);
        if (s > 0) {
            // Dependent stages inside one kernel synchronize with
            // grid.sync() (paper Sec. 6.4).
            Instr sync;
            sync.kind = InstrKind::kGridSync;
            stage.instrs.insert(stage.instrs.begin(), sync);
        }
        kernel.stages.push_back(std::move(stage));
    }
    // Shrink stages to the kernel's cooperative wave so a multi-stage
    // kernel stays grid-sync feasible. Only rigidly-tiled schedules pin
    // a block count; grid-stride TEs fused into the same stage are
    // correct at any count, so a stage can always come down to the max
    // of its own rigid members (the resource-caps lint rule checks the
    // resulting invariant).
    if (kernel.stages.size() > 1) {
        auto rigid_in_stage = [&](const KernelStage &stage) {
            int64_t rigid = 0;
            for (int te_id : stage.teIds) {
                const Schedule &sched = schedules.at(te_id);
                if (!sched.gridStride)
                    rigid = std::max(rigid, sched.numBlocks);
            }
            return rigid;
        };
        int64_t rigid_blocks = 1;
        for (const auto &stage : kernel.stages)
            rigid_blocks = std::max(rigid_blocks, rigid_in_stage(stage));
        const int64_t wave = device.maxBlocksPerWave(
            kernel.sharedMemBytes(), kernel.regsPerBlock(),
            kernel.threadsPerBlock());
        const int64_t cap = std::max(rigid_blocks, wave);
        for (auto &stage : kernel.stages) {
            stage.numBlocks = std::max(rigid_in_stage(stage),
                                       std::min(stage.numBlocks, cap));
        }
    }
    // Mark stages whose launch dims differ from the kernel's as
    // predicated (paper Sec. 6.4: `if (blockIdx.x < ...)`).
    const int64_t kernel_blocks = kernel.numBlocks();
    for (auto &stage : kernel.stages) {
        if (stage.numBlocks < kernel_blocks)
            stage.predicated = true;
    }
    return kernel;
}

} // namespace souffle
