#include "kernel/kernel_passes.h"

#include <unordered_set>

#include "gpu/sim.h"
#include "kernel/pipeline_opt.h"
#include "kernel/reuse_opt.h"

namespace souffle {

void
BuildModulePass::run(CompileContext &ctx)
{
    ctx.result.module =
        buildModule(ctx.program(), ctx.analysis(), ctx.schedules,
                    ctx.plan, ctx.options.device, ctx.result.name);
    ctx.counter("kernels", ctx.result.module.numKernels());
}

void
TwoPhaseReductionPass::run(CompileContext &ctx)
{
    const TeProgram &program = ctx.program();
    const GlobalAnalysis &analysis = ctx.analysis();
    int64_t converted = 0;
    for (auto &kernel : ctx.result.module.kernels) {
        if (kernel.stages.size() < 2)
            continue;
        std::unordered_set<int> kernel_tes;
        for (const auto &stage : kernel.stages)
            kernel_tes.insert(stage.teIds.begin(), stage.teIds.end());
        for (auto &stage : kernel.stages) {
            for (auto &instr : stage.instrs) {
                if (instr.kind != InstrKind::kStoreGlobal
                    || instr.tensor < 0)
                    continue;
                const int producer =
                    program.tensor(instr.tensor).producer;
                if (producer < 0 || !program.te(producer).hasReduce())
                    continue;
                // Contractions reduce block-locally inside their own
                // k-loop; only memory-intensive reductions (whose rows
                // are shared across blocks under a propagated
                // schedule) need the atomic combine.
                if (analysis.teInfo(producer).computeIntensive)
                    continue;
                bool internal = program.tensor(instr.tensor).role
                                != TensorRole::kOutput;
                for (int consumer : analysis.consumers(instr.tensor)) {
                    if (!kernel_tes.count(consumer)) {
                        internal = false;
                        break;
                    }
                }
                if (internal) {
                    instr.kind = InstrKind::kAtomicAdd;
                    ++converted;
                }
            }
        }
    }
    ctx.counter("atomicStores", converted);
}

void
PipelineOptimizePass::run(CompileContext &ctx)
{
    const PipelineStats stats =
        pipelineOptimize(ctx.result.module, ctx.program());
    ctx.result.loadsOverlapped = stats.loadsOverlapped;
    ctx.counter("loadsOverlapped", stats.loadsOverlapped);
    ctx.counter("bytesOverlapped",
                static_cast<int64_t>(stats.bytesOverlapped));
}

void
ReuseOptimizePass::run(CompileContext &ctx)
{
    const ReuseStats stats = reuseOptimize(
        ctx.result.module, ctx.program(), ctx.options.device);
    ctx.result.loadsCached = stats.loadsCached;
    ctx.counter("loadsCached", stats.loadsCached);
    ctx.counter("evictions", stats.evictions);
}

void
AdaptiveFusionPass::run(CompileContext &ctx)
{
    const GlobalAnalysis &analysis = ctx.analysis();
    CompiledModule adapted;
    adapted.compilerName = ctx.result.module.compilerName;
    for (size_t k = 0; k < ctx.result.module.kernels.size(); ++k) {
        Kernel &merged = ctx.result.module.kernels[k];
        if (merged.stages.size() < 2) {
            adapted.kernels.push_back(std::move(merged));
            continue;
        }
        CompiledModule merged_only;
        merged_only.kernels.push_back(merged);
        const double merged_us =
            simulate(merged_only, ctx.options.device).totalUs;

        CompiledModule split;
        for (size_t s = 0; s < ctx.plan.kernels[k].stages.size(); ++s) {
            KernelPlan stage_plan;
            stage_plan.name =
                ctx.plan.kernels[k].name + "_s" + std::to_string(s);
            stage_plan.stages.push_back(ctx.plan.kernels[k].stages[s]);
            split.kernels.push_back(
                buildKernel(ctx.program(), analysis, ctx.schedules,
                            stage_plan, ctx.options.device));
        }
        const double split_us =
            simulate(split, ctx.options.device).totalUs;

        if (split_us < merged_us) {
            ++ctx.result.adaptiveSplits;
            for (auto &kernel : split.kernels)
                adapted.kernels.push_back(std::move(kernel));
        } else {
            adapted.kernels.push_back(std::move(merged));
        }
    }
    ctx.result.module = std::move(adapted);
    ctx.counter("splits", ctx.result.adaptiveSplits);
}

} // namespace souffle
