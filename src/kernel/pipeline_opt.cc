#include "kernel/pipeline_opt.h"

#include <unordered_set>

namespace souffle {

PipelineStats
pipelineOptimize(CompiledModule &module, const TeProgram &program)
{
    PipelineStats stats;
    for (auto &kernel : module.kernels) {
        if (kernel.stages.size() < 2)
            continue;
        // Tensors produced anywhere in this kernel: their loads carry
        // RAW dependences on in-kernel stores and cannot be prefetched.
        std::unordered_set<int> kernel_tes;
        for (const auto &stage : kernel.stages)
            kernel_tes.insert(stage.teIds.begin(), stage.teIds.end());

        for (size_t s = 1; s < kernel.stages.size(); ++s) {
            for (auto &instr : kernel.stages[s].instrs) {
                if (instr.kind != InstrKind::kLoadGlobal)
                    continue;
                const int producer =
                    instr.tensor >= 0
                        ? program.tensor(instr.tensor).producer
                        : -1;
                if (producer >= 0 && kernel_tes.count(producer))
                    continue; // RAW inside the kernel
                instr.overlapped = true;
                ++stats.loadsOverlapped;
                stats.bytesOverlapped += instr.bytes;
            }
        }
    }
    return stats;
}

} // namespace souffle
