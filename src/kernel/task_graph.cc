#include "kernel/task_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace souffle {

std::string
taskEdgeKindName(TaskEdgeKind kind)
{
    switch (kind) {
      case TaskEdgeKind::kRaw:
        return "RAW";
      case TaskEdgeKind::kWar:
        return "WAR";
      case TaskEdgeKind::kWaw:
        return "WAW";
      case TaskEdgeKind::kAlias:
        return "alias";
    }
    return "?";
}

std::string
TaskEdge::toString() const
{
    std::ostringstream os;
    os << taskEdgeKindName(kind) << " " << from << " -> " << to;
    if (tensor >= 0)
        os << " (t" << tensor << ")";
    return os.str();
}

namespace {

std::vector<std::vector<int>>
adjacency(const TaskGraph &graph, bool forward)
{
    std::vector<std::vector<int>> adj(
        static_cast<size_t>(graph.numTasks()));
    for (const TaskEdge &edge : graph.edges) {
        if (edge.from < 0 || edge.to < 0
            || edge.from >= graph.numTasks()
            || edge.to >= graph.numTasks())
            continue; // malformed edges are the lint rule's business
        if (forward)
            adj[static_cast<size_t>(edge.from)].push_back(edge.to);
        else
            adj[static_cast<size_t>(edge.to)].push_back(edge.from);
    }
    for (auto &list : adj) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    return adj;
}

} // namespace

std::vector<std::vector<int>>
TaskGraph::predecessors() const
{
    return adjacency(*this, /*forward=*/false);
}

std::vector<std::vector<int>>
TaskGraph::successors() const
{
    return adjacency(*this, /*forward=*/true);
}

std::string
TaskGraph::toString() const
{
    std::ostringstream os;
    os << "task graph: " << tasks.size() << " tasks, " << edges.size()
       << " edges\n";
    for (const TaskDesc &task : tasks) {
        os << "  task " << task.stage << " " << task.name << " (shards="
           << task.shards << ", blocks=" << task.blocks << ")\n";
    }
    for (const TaskEdge &edge : edges)
        os << "  edge " << edge.toString() << "\n";
    return os.str();
}

TaskGraphReachability::TaskGraphReachability(const TaskGraph &graph)
    : numTasks(graph.numTasks())
{
    closure.assign(
        static_cast<size_t>(numTasks) * static_cast<size_t>(numTasks),
        false);
    const std::vector<std::vector<int>> succ = graph.successors();
    for (int from = 0; from < numTasks; ++from) {
        std::deque<int> queue(succ[static_cast<size_t>(from)].begin(),
                              succ[static_cast<size_t>(from)].end());
        while (!queue.empty()) {
            const int to = queue.front();
            queue.pop_front();
            const size_t bit = static_cast<size_t>(from)
                                   * static_cast<size_t>(numTasks)
                               + static_cast<size_t>(to);
            if (closure[bit])
                continue;
            closure[bit] = true;
            for (int next : succ[static_cast<size_t>(to)])
                queue.push_back(next);
        }
    }
}

bool
TaskGraphReachability::reaches(int from, int to) const
{
    if (from < 0 || to < 0 || from >= numTasks || to >= numTasks)
        return false;
    return closure[static_cast<size_t>(from)
                       * static_cast<size_t>(numTasks)
                   + static_cast<size_t>(to)];
}

} // namespace souffle
