#pragma once

/**
 * @file
 * Tensor-reuse optimization: the software-managed on-chip cache with
 * LRU replacement of paper Sec. 6.5.
 *
 * Within one kernel, a tensor that was produced by an earlier stage or
 * loaded by an earlier stage may still be resident in shared memory or
 * registers. The pass scans the kernel's instruction stream linearly,
 * models an LRU cache over the device's spare on-chip capacity, and
 * converts hits from global loads into cached loads. When capacity is
 * exhausted, the least-recently-used buffer is spilled (a block-level
 * barrier is charged, matching the paper's "spill + memory barrier").
 */

#include "analysis/analysis.h"
#include "gpu/device.h"
#include "kernel/kernel_ir.h"
#include "te/program.h"

namespace souffle {

/** Statistics of the reuse pass. */
struct ReuseStats
{
    int loadsCached = 0;
    double bytesSaved = 0.0;
    int evictions = 0;
};

/**
 * Apply the LRU tensor-reuse optimization to @p module (in place).
 */
ReuseStats reuseOptimize(CompiledModule &module, const TeProgram &program,
                         const DeviceSpec &device);

/** Spare on-chip bytes available to the software cache of @p kernel. */
int64_t reuseCacheCapacity(const Kernel &kernel, const DeviceSpec &device);

} // namespace souffle
