#pragma once

/**
 * @file
 * Kernel-IR (de)serialization: the compiled module (kernels, stages,
 * abstract instruction streams) and the module plan it was built from
 * round-trip through JSON. Together with te/serialize.h and the
 * schedule-array serializer this forms the compiled-artifact format
 * (compiler/artifact_io.h): a module compiled offline is reloaded for
 * online serving without re-running planning or scheduling.
 *
 * Doubles (byte/flop totals, library time factors) are written with
 * 17 significant digits, so a parsed module is bit-identical to the
 * serialized one — same simulator timings, same `toString` text.
 *
 * Module format versions: 1 = kernels only; 2 adds the optional
 * `taskGraph` member (V5 persistent megakernel). The writer emits
 * version 2 only when a task graph is present, so pre-V5 artifacts
 * stay byte-identical; the reader accepts both.
 */

#include <string>

#include "kernel/build.h"
#include "kernel/kernel_ir.h"

namespace souffle {

/** Serialize @p module to a JSON document. */
std::string serializeCompiledModule(const CompiledModule &module);

/** Inverse of `serializeCompiledModule`; throws FatalError on
 *  malformed input. */
CompiledModule deserializeCompiledModule(const std::string &text);

/** Serialize @p plan to a JSON document. */
std::string serializeModulePlan(const ModulePlan &plan);

/** Inverse of `serializeModulePlan`; throws FatalError on malformed
 *  input. */
ModulePlan deserializeModulePlan(const std::string &text);

} // namespace souffle
