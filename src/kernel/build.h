#pragma once

/**
 * @file
 * Materialization of kernel plans into kernel IR.
 *
 * A *plan* says which TEs go into which kernel and, inside a kernel,
 * which TEs are fused into the same stage (register-level fusion via
 * schedule propagation, Sec. 6.3). The builder derives the abstract
 * instruction stream: inputs produced inside the same stage cost
 * nothing; inputs produced in an earlier stage of the same kernel are
 * loaded from global memory (until the reuse optimizer converts them
 * to cached loads); stage boundaries get grid synchronization.
 */

#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "kernel/kernel_ir.h"
#include "sched/schedule.h"

namespace souffle {

/** TEs fused into one kernel stage. */
struct StagePlan
{
    std::vector<int> tes;
};

/** Stages fused into one kernel (separated by grid sync). */
struct KernelPlan
{
    std::string name;
    std::vector<StagePlan> stages;
    bool library = false;
    double libraryTimeFactor = 1.0;
};

/** A whole-program kernel plan. */
struct ModulePlan
{
    std::vector<KernelPlan> kernels;

    /** One kernel, one stage per TE: the fully unfused plan. */
    static ModulePlan unfused(const TeProgram &program);
};

/**
 * Check that @p plan covers every TE of @p program exactly once.
 * Returns an empty string when the plan is well-formed, else a
 * description of the violation. Shared by `buildModule` (which panics
 * on it -- an internal bug) and the inter-pass `IrVerifier` (which
 * throws, so tests can observe rejections).
 */
std::string describePlanCoverageViolation(const TeProgram &program,
                                          const ModulePlan &plan);

/**
 * Build the kernel IR for @p plan.
 *
 * Every TE of the program must appear in exactly one stage of exactly
 * one kernel, in topological order (checked).
 */
CompiledModule buildModule(const TeProgram &program,
                           const GlobalAnalysis &analysis,
                           const std::vector<Schedule> &schedules,
                           const ModulePlan &plan,
                           const DeviceSpec &device,
                           const std::string &compiler_name);

/**
 * Build one kernel from @p plan without whole-program coverage
 * checks. Used by the adaptive-fusion profitability pass, which
 * evaluates merged vs. split variants of a single subprogram.
 */
Kernel buildKernel(const TeProgram &program,
                   const GlobalAnalysis &analysis,
                   const std::vector<Schedule> &schedules,
                   const KernelPlan &plan, const DeviceSpec &device);

} // namespace souffle
