#pragma once

/**
 * @file
 * Small string-formatting helpers shared across the library.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace souffle {

/** Join the elements of @p items with @p sep, e.g. "64x64x3". */
template <typename T>
std::string
joinToString(const std::vector<T> &items, const std::string &sep)
{
    std::ostringstream os;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            os << sep;
        os << items[i];
    }
    return os.str();
}

/** Render a shape vector as "[a, b, c]". */
std::string shapeToString(const std::vector<int64_t> &shape);

/** Render a byte count with a human unit, e.g. "8.87 MB". */
std::string bytesToString(double bytes);

/** Render a time in microseconds with a sensible unit. */
std::string timeToString(double micros);

/** Escape a string for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &text);

} // namespace souffle
