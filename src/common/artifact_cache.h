#pragma once

/**
 * @file
 * Layered content-addressed artifact cache.
 *
 * Compilation artifacts (auto-schedules today; any serializable
 * by-product tomorrow) are keyed by what *produced* them rather than
 * where they came from:
 *
 *   (artifact kind, content fingerprint, device fingerprint, salt)
 *
 * - `kind` names the artifact family ("schedule", "module", ...) so
 *   different payload formats never alias.
 * - `content` is the structural fingerprint of the IR the artifact was
 *   derived from (see te/fingerprint.h) — rename-invariant, so the
 *   same GEMM cached for one model hits for every other model that
 *   contains it.
 * - `device` is the behavioral device-spec fingerprint (gpu/device.h);
 *   retuning for a different device never reuses stale artifacts.
 * - `salt` carries the producing pass's options that affect the
 *   artifact (e.g. scheduler mode) as an explicit string, so adding an
 *   option to a producer is a one-line invalidation.
 *
 * Two layers: a byte-capacity in-memory LRU (always on) and an
 * optional on-disk directory of one JSON file per artifact (survives
 * process restarts; hits are promoted into memory). Payloads are
 * opaque strings — producers serialize/deserialize their own artifact
 * format, typically as JSON via JsonWriter/parseJson with
 * `setDoublePrecision(17)` so doubles round-trip exactly.
 *
 * ## Thread safety
 *
 * `get`/`put`/`stats` are safe to call concurrently: the memory layer
 * is sharded — each key hashes to one of `shards` independent LRU
 * sub-caches with its own mutex and `capacity / shards` byte budget —
 * so parallel schedule searches contend only when they touch the same
 * shard. Counters are atomics. With more than one shard the byte
 * bound and LRU order therefore hold *per shard* (the global bound
 * still holds exactly; eviction picks the coldest entry of the
 * inserting shard, not of the whole cache). Tests that pin exact
 * global LRU order construct the cache with `shards = 1`.
 * `setDiskDir` is setup-time configuration and must not race with
 * get/put.
 *
 * ## Crash safety & concurrent writers (disk layer)
 *
 * Disk writes go through a temp file in the cache directory followed
 * by an atomic `rename(2)` onto the final name. A reader therefore
 * never observes a partially-written artifact (a crash mid-write
 * leaves only a stale `*.tmp.*` file, never a corrupt entry), and any
 * number of processes or threads may write the same key concurrently:
 * each writes its own temp file and the last rename wins. Because keys
 * are content addresses, concurrent writers of one key carry identical
 * payloads, so "last writer wins" is indistinguishable from "first
 * writer wins" — and `loadFromDisk` verifies the full embedded key on
 * every read regardless, so even a hash-colliding foreign file reads
 * as a miss, never as a wrong artifact.
 */

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"

namespace souffle {

/** Full content address of one cached artifact. */
struct ArtifactKey
{
    /** Artifact family, e.g. "schedule". */
    std::string kind;
    /** Structural fingerprint of the producing IR. */
    Fingerprint content;
    /** Behavioral device fingerprint. */
    Fingerprint device;
    /** Producer options that affect the artifact. */
    std::string salt;

    /** Canonical string form, used as the index key and in logs. */
    std::string toString() const;

    bool
    operator==(const ArtifactKey &other) const
    {
        return kind == other.kind && content == other.content
               && device == other.device && salt == other.salt;
    }
};

/** Monotonic counters; see ArtifactCache::stats(). */
struct ArtifactCacheStats
{
    /** get() served from the in-memory layer. */
    int64_t hits = 0;
    /** get() found in neither layer. */
    int64_t misses = 0;
    /** get() served from disk (also counted in hits). */
    int64_t diskHits = 0;
    int64_t inserts = 0;
    /** Entries dropped to respect the memory byte capacity. */
    int64_t evictions = 0;
    int64_t diskWrites = 0;
    /** Payload bytes currently held in memory. */
    int64_t bytesInMemory = 0;
};

/**
 * The cache. get()/put() never throw on I/O problems: an unreadable
 * or corrupt disk entry is treated as a miss (with a warning), an
 * unwritable directory degrades to memory-only. Artifacts larger than
 * a shard's capacity are still persisted to disk when enabled.
 */
class ArtifactCache
{
  public:
    /** Memory-shard count balancing lock contention vs LRU quality. */
    static constexpr int kDefaultShards = 8;

    /**
     * @p memory_capacity_bytes bounds the in-memory payload bytes
     * (split evenly across @p shards independent LRU sub-caches).
     */
    explicit ArtifactCache(int64_t memory_capacity_bytes = 64 << 20,
                           int shards = kDefaultShards);

    /**
     * Attach an on-disk layer rooted at @p dir (created if absent).
     * Pass an empty string to detach. Setup-time only: must not race
     * with concurrent get/put.
     */
    void setDiskDir(const std::string &dir);
    const std::string &diskDir() const { return diskRoot; }

    /** Look up @p key in memory, then (if attached) on disk. */
    std::optional<std::string> get(const ArtifactKey &key);

    /** Insert/overwrite @p key; persists to disk when attached. */
    void put(const ArtifactKey &key, const std::string &payload);

    /** Consistent snapshot of the monotonic counters. */
    ArtifactCacheStats stats() const;

    int64_t size() const;
    int64_t capacityBytes() const { return capacity; }
    int numShards() const { return static_cast<int>(shards.size()); }

  private:
    struct Entry
    {
        std::string indexKey;
        std::string payload;
    };

    /** One independent LRU sub-cache under its own lock. */
    struct Shard
    {
        mutable std::mutex mutex;
        /** MRU-first entry list; `index` maps key string → node. */
        std::list<Entry> lru;
        std::unordered_map<std::string, std::list<Entry>::iterator>
            index;
        int64_t bytes = 0;
    };

    Shard &shardFor(const std::string &index_key);

    /** Path of @p key's artifact file under the disk root. */
    std::string diskPathFor(const ArtifactKey &key) const;
    /** Insert into a shard's LRU, evicting from its cold end as
     *  needed. Caller must hold the shard's mutex. */
    void insertMemoryLocked(Shard &shard, const std::string &index_key,
                            const std::string &payload);
    std::optional<std::string> loadFromDisk(const ArtifactKey &key);
    void storeToDisk(const ArtifactKey &key, const std::string &payload);

    int64_t capacity;
    int64_t shardCapacity;
    std::string diskRoot;
    std::vector<std::unique_ptr<Shard>> shards;

    std::atomic<int64_t> hitCount{0};
    std::atomic<int64_t> missCount{0};
    std::atomic<int64_t> diskHitCount{0};
    std::atomic<int64_t> insertCount{0};
    std::atomic<int64_t> evictionCount{0};
    std::atomic<int64_t> diskWriteCount{0};
    std::atomic<int64_t> bytesInMemory{0};
    /** Uniquifier for concurrent temp files from one process. */
    std::atomic<uint64_t> tempSerial{0};
};

} // namespace souffle
