#pragma once

/**
 * @file
 * Layered content-addressed artifact cache.
 *
 * Compilation artifacts (auto-schedules today; any serializable
 * by-product tomorrow) are keyed by what *produced* them rather than
 * where they came from:
 *
 *   (artifact kind, content fingerprint, device fingerprint, salt)
 *
 * - `kind` names the artifact family ("schedule", "module", ...) so
 *   different payload formats never alias.
 * - `content` is the structural fingerprint of the IR the artifact was
 *   derived from (see te/fingerprint.h) — rename-invariant, so the
 *   same GEMM cached for one model hits for every other model that
 *   contains it.
 * - `device` is the behavioral device-spec fingerprint (gpu/device.h);
 *   retuning for a different device never reuses stale artifacts.
 * - `salt` carries the producing pass's options that affect the
 *   artifact (e.g. scheduler mode) as an explicit string, so adding an
 *   option to a producer is a one-line invalidation.
 *
 * Two layers: a byte-capacity in-memory LRU (always on) and an
 * optional on-disk directory of one JSON file per artifact (survives
 * process restarts; hits are promoted into memory). Payloads are
 * opaque strings — producers serialize/deserialize their own artifact
 * format, typically as JSON via JsonWriter/parseJson with
 * `setDoublePrecision(17)` so doubles round-trip exactly.
 *
 * Single-threaded by design, matching the rest of the compiler; the
 * serving simulator shares one instance across its module cache from
 * one event loop.
 */

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/hash.h"

namespace souffle {

/** Full content address of one cached artifact. */
struct ArtifactKey
{
    /** Artifact family, e.g. "schedule". */
    std::string kind;
    /** Structural fingerprint of the producing IR. */
    Fingerprint content;
    /** Behavioral device fingerprint. */
    Fingerprint device;
    /** Producer options that affect the artifact. */
    std::string salt;

    /** Canonical string form, used as the index key and in logs. */
    std::string toString() const;

    bool
    operator==(const ArtifactKey &other) const
    {
        return kind == other.kind && content == other.content
               && device == other.device && salt == other.salt;
    }
};

/** Monotonic counters; see ArtifactCache::stats(). */
struct ArtifactCacheStats
{
    /** get() served from the in-memory layer. */
    int64_t hits = 0;
    /** get() found in neither layer. */
    int64_t misses = 0;
    /** get() served from disk (also counted in hits). */
    int64_t diskHits = 0;
    int64_t inserts = 0;
    /** Entries dropped to respect the memory byte capacity. */
    int64_t evictions = 0;
    int64_t diskWrites = 0;
    /** Payload bytes currently held in memory. */
    int64_t bytesInMemory = 0;
};

/**
 * The cache. get()/put() never throw on I/O problems: an unreadable
 * or corrupt disk entry is treated as a miss (with a warning), an
 * unwritable directory degrades to memory-only. Artifacts larger than
 * the memory capacity are still persisted to disk when enabled.
 */
class ArtifactCache
{
  public:
    /** @p memory_capacity_bytes bounds the in-memory payload bytes. */
    explicit ArtifactCache(int64_t memory_capacity_bytes = 64 << 20);

    /**
     * Attach an on-disk layer rooted at @p dir (created if absent).
     * Pass an empty string to detach.
     */
    void setDiskDir(const std::string &dir);
    const std::string &diskDir() const { return diskRoot; }

    /** Look up @p key in memory, then (if attached) on disk. */
    std::optional<std::string> get(const ArtifactKey &key);

    /** Insert/overwrite @p key; persists to disk when attached. */
    void put(const ArtifactKey &key, const std::string &payload);

    const ArtifactCacheStats &stats() const { return counters; }

    int64_t size() const { return static_cast<int64_t>(index.size()); }
    int64_t capacityBytes() const { return capacity; }

  private:
    struct Entry
    {
        std::string indexKey;
        std::string payload;
    };

    /** Path of @p key's artifact file under the disk root. */
    std::string diskPathFor(const ArtifactKey &key) const;
    /** Insert into the LRU, evicting from the cold end as needed. */
    void insertMemory(const std::string &index_key,
                      const std::string &payload);
    std::optional<std::string> loadFromDisk(const ArtifactKey &key);
    void storeToDisk(const ArtifactKey &key, const std::string &payload);

    int64_t capacity;
    std::string diskRoot;
    /** MRU-first entry list; `index` maps key string → list node. */
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    ArtifactCacheStats counters;
};

} // namespace souffle
