#pragma once

/**
 * @file
 * Minimal JSON support shared by every JSON-speaking component.
 *
 * `JsonWriter` is a streaming writer used by the lint report
 * renderer, the chrome-trace exporter, the serving-simulator metrics,
 * the artifact cache and the benchmark binaries. It handles comma
 * placement, string escaping (via `jsonEscape`) and non-finite double
 * sanitization so callers never hand-assemble punctuation.
 *
 * Two layout styles are supported: `kSpaced` puts a space after each
 * key (`"key": value`, the lint-report house style) and `kCompact`
 * does not (`"key":value`, the chrome-trace style). Neither emits
 * newlines; callers that want them insert `newline()` markers.
 *
 * `JsonValue`/`parseJson` is the matching reader, added for the
 * on-disk artifact cache (which must read back what it wrote). It is
 * a plain recursive-descent parser over the full JSON grammar;
 * objects preserve member order.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace souffle {

/** Streaming JSON document builder. */
class JsonWriter
{
  public:
    enum class Style : uint8_t {
        kSpaced,  ///< `"key": value`
        kCompact, ///< `"key":value`
    };

    explicit JsonWriter(Style style = Style::kSpaced) : style(style) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit a key inside an object; must be followed by a value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(int64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(size_t number);
    JsonWriter &value(bool flag);

    /** `key(name).value(v)` in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /**
     * Cosmetic newline + indentation (two spaces per nesting level),
     * emitted before the next element. No-op on document validity.
     */
    JsonWriter &newline();

    /**
     * Significant digits used for double values (default 10, enough
     * for reports). Pass 17 for exact IEEE-754 round-trips — the
     * artifact cache uses this so a schedule read back from disk is
     * bit-identical to the one written.
     */
    JsonWriter &setDoublePrecision(int digits);

    /** The document so far. */
    const std::string &str() const { return out; }

  private:
    /** Comma bookkeeping before an element begins. */
    void beginElement();

    Style style;
    std::string out;
    /** Elements emitted so far at each open nesting level. */
    std::vector<int> counts;
    int doubleDigits = 10;
    bool afterKey = false;
    bool pendingNewline = false;
};

namespace detail {
class JsonParser;
} // namespace detail

/** One parsed JSON value (see `parseJson`). */
class JsonValue
{
  public:
    enum class Kind : uint8_t {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    JsonValue() = default;

    Kind kind() const { return valueKind; }
    bool isNull() const { return valueKind == Kind::kNull; }
    bool isBool() const { return valueKind == Kind::kBool; }
    bool isNumber() const { return valueKind == Kind::kNumber; }
    bool isString() const { return valueKind == Kind::kString; }
    bool isArray() const { return valueKind == Kind::kArray; }
    bool isObject() const { return valueKind == Kind::kObject; }

    /** Typed accessors; throw FatalError on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    /** asNumber, checked to be integral and in int64 range. */
    int64_t asInt() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const;
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;
    /** Object member lookup; throws FatalError when absent. */
    const JsonValue &at(const std::string &key) const;

  private:
    friend class detail::JsonParser;

    Kind valueKind = Kind::kNull;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    std::vector<JsonValue> arrayItems;
    std::vector<std::pair<std::string, JsonValue>> objectMembers;
};

/**
 * Parse one JSON document (with arbitrary surrounding whitespace).
 * Throws FatalError with an offset-carrying message on malformed
 * input, including trailing garbage after the document.
 */
JsonValue parseJson(const std::string &text);

} // namespace souffle
