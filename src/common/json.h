#pragma once

/**
 * @file
 * Minimal streaming JSON writer shared by every JSON-emitting
 * component: the lint report renderer, the chrome-trace exporter, the
 * serving-simulator metrics, and the benchmark binaries. Handles
 * comma placement, string escaping (via `jsonEscape`) and non-finite
 * double sanitization so callers never hand-assemble punctuation.
 *
 * Two layout styles are supported: `kSpaced` puts a space after each
 * key (`"key": value`, the lint-report house style) and `kCompact`
 * does not (`"key":value`, the chrome-trace style). Neither emits
 * newlines; callers that want them insert `newline()` markers.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace souffle {

/** Streaming JSON document builder. */
class JsonWriter
{
  public:
    enum class Style : uint8_t {
        kSpaced,  ///< `"key": value`
        kCompact, ///< `"key":value`
    };

    explicit JsonWriter(Style style = Style::kSpaced) : style(style) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit a key inside an object; must be followed by a value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(int64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(size_t number);
    JsonWriter &value(bool flag);

    /** `key(name).value(v)` in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /**
     * Cosmetic newline + indentation (two spaces per nesting level),
     * emitted before the next element. No-op on document validity.
     */
    JsonWriter &newline();

    /** The document so far. */
    const std::string &str() const { return out; }

  private:
    /** Comma bookkeeping before an element begins. */
    void beginElement();

    Style style;
    std::string out;
    /** Elements emitted so far at each open nesting level. */
    std::vector<int> counts;
    bool afterKey = false;
    bool pendingNewline = false;
};

} // namespace souffle
