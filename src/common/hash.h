#pragma once

/**
 * @file
 * Stable 128-bit content fingerprints.
 *
 * The content-addressed compilation layer keys cached artifacts by
 * structural hashes of IR objects (TEs, programs, device specs). Keys
 * must be *stable*: the same logical content must hash identically
 * across processes, runs, and platforms, so on-disk cache entries
 * written by one build are valid for the next. `std::hash` guarantees
 * none of that, so this module provides a fixed algorithm: two
 * independent 64-bit FNV-1a lanes over an explicitly-serialized value
 * stream, finished with a splitmix64-style avalanche. Values (not raw
 * memory) are absorbed, making the result layout- and
 * endianness-independent.
 */

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace souffle {

/** A 128-bit content hash. All-zero means "unset". */
struct Fingerprint
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool valid() const { return hi != 0 || lo != 0; }

    bool operator==(const Fingerprint &other) const
    {
        return hi == other.hi && lo == other.lo;
    }
    bool operator!=(const Fingerprint &other) const
    {
        return !(*this == other);
    }
    bool operator<(const Fingerprint &other) const
    {
        return hi != other.hi ? hi < other.hi : lo < other.lo;
    }

    /** 32 lowercase hex digits (hi then lo). */
    std::string toHex() const;

    /** Parse `toHex` output; throws FatalError on malformed input. */
    static Fingerprint fromHex(const std::string &hex);
};

/**
 * Incremental fingerprint builder. Absorb a tagged value stream, then
 * `finish()`. Tags (small integers fed through `absorb(uint64_t)`)
 * disambiguate adjacent fields so `["ab", "c"]` and `["a", "bc"]`
 * cannot collide by concatenation.
 */
class FingerprintHasher
{
  public:
    FingerprintHasher();

    FingerprintHasher &absorb(uint64_t value);
    FingerprintHasher &absorb(int64_t value);
    FingerprintHasher &absorb(int value);
    FingerprintHasher &absorb(bool value);
    /** Absorbs the IEEE-754 bit pattern (exact, not approximate). */
    FingerprintHasher &absorb(double value);
    /** Length-prefixed, so adjacent strings cannot alias. */
    FingerprintHasher &absorb(const std::string &text);
    FingerprintHasher &absorb(std::span<const int64_t> values);
    FingerprintHasher &absorb(const std::vector<int64_t> &values);
    /** Fold an already-computed fingerprint into the stream. */
    FingerprintHasher &absorb(const Fingerprint &fp);

    /** Finalize. The hasher may keep absorbing afterwards (the
     *  finalization is non-destructive). */
    Fingerprint finish() const;

  private:
    void absorbByte(uint8_t byte);
    void absorbWord(uint64_t word);

    uint64_t laneA;
    uint64_t laneB;
    uint64_t length = 0;
};

} // namespace souffle
