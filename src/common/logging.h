#pragma once

/**
 * @file
 * Logging and invariant-checking utilities for the Souffle library.
 *
 * Follows the gem5 convention: `fatal` reports a user-facing error (bad
 * model, bad configuration) and throws; `panic` reports an internal
 * invariant violation (a Souffle bug) and aborts the process.
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace souffle {

/** Exception thrown for user-facing (recoverable) errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown when a compiler strategy cannot handle a model. */
class UnsupportedError : public std::runtime_error
{
  public:
    explicit UnsupportedError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail {

/** Stream-style message collector used by the macros below. */
class MessageStream
{
  public:
    template <typename T>
    MessageStream &
    operator<<(const T &value)
    {
        stream << value;
        return *this;
    }

    std::string str() const { return stream.str(); }

  private:
    std::ostringstream stream;
};

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Global log verbosity: 0 = silent, 1 = warn, 2 = inform. */
int logVerbosity();
void setLogVerbosity(int level);

} // namespace souffle

/** Abort with an internal-error message; use for Souffle bugs only. */
#define SOUFFLE_PANIC(msg_expr)                                             \
    do {                                                                    \
        ::souffle::detail::MessageStream ms_;                               \
        ms_ << msg_expr;                                                    \
        ::souffle::detail::panicImpl(__FILE__, __LINE__, ms_.str());        \
    } while (0)

/** Throw a FatalError; use for invalid user input or configuration. */
#define SOUFFLE_FATAL(msg_expr)                                             \
    do {                                                                    \
        ::souffle::detail::MessageStream ms_;                               \
        ms_ << msg_expr;                                                    \
        ::souffle::detail::fatalImpl(__FILE__, __LINE__, ms_.str());        \
    } while (0)

/** Check an internal invariant; panics (aborts) on failure. */
#define SOUFFLE_CHECK(cond, msg_expr)                                       \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::souffle::detail::MessageStream ms_;                           \
            ms_ << "check failed: " #cond ": " << msg_expr;                 \
            ::souffle::detail::panicImpl(__FILE__, __LINE__, ms_.str());    \
        }                                                                   \
    } while (0)

/** Check a user-facing precondition; throws FatalError on failure. */
#define SOUFFLE_REQUIRE(cond, msg_expr)                                     \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::souffle::detail::MessageStream ms_;                           \
            ms_ << msg_expr;                                                \
            ::souffle::detail::fatalImpl(__FILE__, __LINE__, ms_.str());    \
        }                                                                   \
    } while (0)

/** Non-fatal diagnostic visible at verbosity >= 1. */
#define SOUFFLE_WARN(msg_expr)                                              \
    do {                                                                    \
        ::souffle::detail::MessageStream ms_;                               \
        ms_ << msg_expr;                                                    \
        ::souffle::detail::warnImpl(__FILE__, __LINE__, ms_.str());         \
    } while (0)

/** Status message visible at verbosity >= 2. */
#define SOUFFLE_INFORM(msg_expr)                                            \
    do {                                                                    \
        ::souffle::detail::MessageStream ms_;                               \
        ms_ << msg_expr;                                                    \
        ::souffle::detail::informImpl(ms_.str());                           \
    } while (0)
