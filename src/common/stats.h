#pragma once

/**
 * @file
 * Shared latency-sample statistics.
 *
 * Both report renderers that summarize request latencies — the
 * serving simulator's `ServingReport` (src/serve/metrics.h) and the
 * fleet simulator's `FleetReport` (src/cluster/fleet_report.h) — use
 * the same nearest-rank percentile definition: the smallest sample
 * value with at least `percentile` percent of the samples at or below
 * it. Hoisting it here keeps the two reports numerically identical by
 * construction and gives the edge cases (empty, single sample, exact
 * boundary ranks) one set of unit tests.
 */

#include <vector>

namespace souffle {

/**
 * Nearest-rank percentile over @p sorted (ascending) samples: the
 * element at rank ceil(percentile/100 * n), clamped to [1, n].
 * Returns 0 when @p sorted is empty. Percentiles <= 0 return the
 * minimum; >= 100 return the maximum.
 */
double percentileNearestRank(const std::vector<double> &sorted,
                             double percentile);

/** Five-number latency summary plus count and mean (all 0 on empty). */
struct LatencySummary
{
    int count = 0;
    double minUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double maxUs = 0.0;
    double meanUs = 0.0;
};

/** Summarize @p samples (copied and sorted internally). */
LatencySummary summarizeLatencies(const std::vector<double> &samples);

} // namespace souffle
