#include "common/artifact_cache.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace souffle {

std::string
ArtifactKey::toString() const
{
    std::string result = kind;
    result += '/';
    result += content.toHex();
    result += '/';
    result += device.toHex();
    result += '/';
    result += salt;
    return result;
}

ArtifactCache::ArtifactCache(int64_t memory_capacity_bytes, int num_shards)
    : capacity(memory_capacity_bytes)
{
    SOUFFLE_REQUIRE(capacity >= 0,
                    "artifact cache capacity must be non-negative, got "
                        << capacity);
    SOUFFLE_REQUIRE(num_shards >= 1,
                    "artifact cache needs >= 1 shard, got "
                        << num_shards);
    shards.reserve(static_cast<size_t>(num_shards));
    for (int i = 0; i < num_shards; ++i)
        shards.push_back(std::make_unique<Shard>());
    shardCapacity = capacity / num_shards;
}

ArtifactCache::Shard &
ArtifactCache::shardFor(const std::string &index_key)
{
    if (shards.size() == 1)
        return *shards[0];
    // std::hash is fine here: the shard choice affects only lock
    // contention and eviction locality, never lookup results.
    const size_t slot =
        std::hash<std::string>{}(index_key) % shards.size();
    return *shards[slot];
}

void
ArtifactCache::setDiskDir(const std::string &dir)
{
    diskRoot = dir;
    if (diskRoot.empty())
        return;
    // mkdir -p for a single level; nested parents must already exist
    // (callers pass flat cache dirs). EEXIST is the common warm case.
    if (::mkdir(diskRoot.c_str(), 0755) != 0 && errno != EEXIST) {
        SOUFFLE_WARN("cannot create cache dir '"
                     << diskRoot << "'; disk layer disabled");
        diskRoot.clear();
    }
}

std::string
ArtifactCache::diskPathFor(const ArtifactKey &key) const
{
    // File name = fingerprint of the full key string, so arbitrary
    // kind/salt strings never need filesystem escaping.
    FingerprintHasher hasher;
    hasher.absorb(key.toString());
    return diskRoot + "/" + hasher.finish().toHex() + ".json";
}

std::optional<std::string>
ArtifactCache::get(const ArtifactKey &key)
{
    const std::string index_key = key.toString();
    Shard &shard = shardFor(index_key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto found = shard.index.find(index_key);
        if (found != shard.index.end()) {
            // Refresh recency: splice the node to the MRU end.
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             found->second);
            hitCount.fetch_add(1, std::memory_order_relaxed);
            return found->second->payload;
        }
    }
    if (!diskRoot.empty()) {
        // Disk I/O runs outside the shard lock; two threads missing
        // the same key may both read the file and both promote it —
        // benign, the payloads are identical by construction.
        std::optional<std::string> payload = loadFromDisk(key);
        if (payload) {
            hitCount.fetch_add(1, std::memory_order_relaxed);
            diskHitCount.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(shard.mutex);
            insertMemoryLocked(shard, index_key, *payload);
            return payload;
        }
    }
    missCount.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

void
ArtifactCache::put(const ArtifactKey &key, const std::string &payload)
{
    const std::string index_key = key.toString();
    insertCount.fetch_add(1, std::memory_order_relaxed);
    {
        Shard &shard = shardFor(index_key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        insertMemoryLocked(shard, index_key, payload);
    }
    if (!diskRoot.empty())
        storeToDisk(key, payload);
}

void
ArtifactCache::insertMemoryLocked(Shard &shard,
                                  const std::string &index_key,
                                  const std::string &payload)
{
    auto found = shard.index.find(index_key);
    if (found != shard.index.end()) {
        const int64_t old =
            static_cast<int64_t>(found->second->payload.size());
        shard.bytes -= old;
        bytesInMemory.fetch_sub(old, std::memory_order_relaxed);
        shard.lru.erase(found->second);
        shard.index.erase(found);
    }
    const int64_t bytes = static_cast<int64_t>(payload.size());
    if (bytes > shardCapacity)
        return; // Oversized for the memory layer; disk still has it.
    while (shard.bytes + bytes > shardCapacity && !shard.lru.empty()) {
        const int64_t victim =
            static_cast<int64_t>(shard.lru.back().payload.size());
        shard.bytes -= victim;
        bytesInMemory.fetch_sub(victim, std::memory_order_relaxed);
        shard.index.erase(shard.lru.back().indexKey);
        shard.lru.pop_back();
        evictionCount.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(Entry{index_key, payload});
    shard.index.emplace(index_key, shard.lru.begin());
    shard.bytes += bytes;
    bytesInMemory.fetch_add(bytes, std::memory_order_relaxed);
}

ArtifactCacheStats
ArtifactCache::stats() const
{
    ArtifactCacheStats out;
    out.hits = hitCount.load(std::memory_order_relaxed);
    out.misses = missCount.load(std::memory_order_relaxed);
    out.diskHits = diskHitCount.load(std::memory_order_relaxed);
    out.inserts = insertCount.load(std::memory_order_relaxed);
    out.evictions = evictionCount.load(std::memory_order_relaxed);
    out.diskWrites = diskWriteCount.load(std::memory_order_relaxed);
    out.bytesInMemory = bytesInMemory.load(std::memory_order_relaxed);
    return out;
}

int64_t
ArtifactCache::size() const
{
    int64_t total = 0;
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += static_cast<int64_t>(shard->index.size());
    }
    return total;
}

std::optional<std::string>
ArtifactCache::loadFromDisk(const ArtifactKey &key)
{
    std::string path = diskPathFor(key);
    std::ifstream file(path);
    if (!file)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    try {
        JsonValue doc = parseJson(buffer.str());
        // Verify the full key, not just the hashed file name: a hash
        // collision or a foreign file must read as a miss, never as a
        // wrong artifact.
        if (doc.at("kind").asString() != key.kind
            || doc.at("content").asString() != key.content.toHex()
            || doc.at("device").asString() != key.device.toHex()
            || doc.at("salt").asString() != key.salt) {
            SOUFFLE_WARN("cache file '" << path
                                        << "' holds a different key; "
                                           "treating as a miss");
            return std::nullopt;
        }
        return doc.at("payload").asString();
    } catch (const FatalError &err) {
        SOUFFLE_WARN("corrupt cache file '" << path << "' ("
                                            << err.what()
                                            << "); treating as a miss");
        return std::nullopt;
    }
}

void
ArtifactCache::storeToDisk(const ArtifactKey &key,
                           const std::string &payload)
{
    const std::string path = diskPathFor(key);
    JsonWriter writer;
    writer.beginObject()
        .newline()
        .field("kind", key.kind)
        .newline()
        .field("content", key.content.toHex())
        .newline()
        .field("device", key.device.toHex())
        .newline()
        .field("salt", key.salt)
        .newline()
        .field("payload", payload)
        .newline()
        .endObject();
    // Temp-file + rename: the final name only ever points at a fully
    // written artifact, so concurrent readers (and readers after a
    // crash) never see a partial file. The temp name is unique per
    // (process, write), so concurrent writers of one key each write
    // their own temp file; the last rename wins with identical bytes.
    const uint64_t serial =
        tempSerial.fetch_add(1, std::memory_order_relaxed);
    const std::string temp = path + ".tmp." + std::to_string(::getpid())
                             + "." + std::to_string(serial);
    {
        std::ofstream file(temp, std::ios::trunc);
        if (!file) {
            SOUFFLE_WARN("cannot write cache file '" << temp << "'");
            return;
        }
        file << writer.str() << '\n';
        if (!file.good()) {
            SOUFFLE_WARN("short write to cache file '" << temp << "'");
            file.close();
            std::remove(temp.c_str());
            return;
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        SOUFFLE_WARN("cannot publish cache file '" << path << "'");
        std::remove(temp.c_str());
        return;
    }
    diskWriteCount.fetch_add(1, std::memory_order_relaxed);
}

} // namespace souffle
