#include "common/artifact_cache.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace souffle {

std::string
ArtifactKey::toString() const
{
    std::string result = kind;
    result += '/';
    result += content.toHex();
    result += '/';
    result += device.toHex();
    result += '/';
    result += salt;
    return result;
}

ArtifactCache::ArtifactCache(int64_t memory_capacity_bytes)
    : capacity(memory_capacity_bytes)
{
    SOUFFLE_REQUIRE(capacity >= 0,
                    "artifact cache capacity must be non-negative, got "
                        << capacity);
}

void
ArtifactCache::setDiskDir(const std::string &dir)
{
    diskRoot = dir;
    if (diskRoot.empty())
        return;
    // mkdir -p for a single level; nested parents must already exist
    // (callers pass flat cache dirs). EEXIST is the common warm case.
    if (::mkdir(diskRoot.c_str(), 0755) != 0 && errno != EEXIST) {
        SOUFFLE_WARN("cannot create cache dir '"
                     << diskRoot << "'; disk layer disabled");
        diskRoot.clear();
    }
}

std::string
ArtifactCache::diskPathFor(const ArtifactKey &key) const
{
    // File name = fingerprint of the full key string, so arbitrary
    // kind/salt strings never need filesystem escaping.
    FingerprintHasher hasher;
    hasher.absorb(key.toString());
    return diskRoot + "/" + hasher.finish().toHex() + ".json";
}

std::optional<std::string>
ArtifactCache::get(const ArtifactKey &key)
{
    std::string index_key = key.toString();
    auto found = index.find(index_key);
    if (found != index.end()) {
        // Refresh recency: splice the node to the MRU end.
        lru.splice(lru.begin(), lru, found->second);
        ++counters.hits;
        return found->second->payload;
    }
    if (!diskRoot.empty()) {
        std::optional<std::string> payload = loadFromDisk(key);
        if (payload) {
            ++counters.hits;
            ++counters.diskHits;
            insertMemory(index_key, *payload);
            return payload;
        }
    }
    ++counters.misses;
    return std::nullopt;
}

void
ArtifactCache::put(const ArtifactKey &key, const std::string &payload)
{
    ++counters.inserts;
    insertMemory(key.toString(), payload);
    if (!diskRoot.empty())
        storeToDisk(key, payload);
}

void
ArtifactCache::insertMemory(const std::string &index_key,
                            const std::string &payload)
{
    auto found = index.find(index_key);
    if (found != index.end()) {
        counters.bytesInMemory -=
            static_cast<int64_t>(found->second->payload.size());
        lru.erase(found->second);
        index.erase(found);
    }
    int64_t bytes = static_cast<int64_t>(payload.size());
    if (bytes > capacity)
        return; // Oversized for the memory layer; disk still has it.
    while (counters.bytesInMemory + bytes > capacity && !lru.empty()) {
        counters.bytesInMemory -=
            static_cast<int64_t>(lru.back().payload.size());
        index.erase(lru.back().indexKey);
        lru.pop_back();
        ++counters.evictions;
    }
    lru.push_front(Entry{index_key, payload});
    index.emplace(index_key, lru.begin());
    counters.bytesInMemory += bytes;
}

std::optional<std::string>
ArtifactCache::loadFromDisk(const ArtifactKey &key)
{
    std::string path = diskPathFor(key);
    std::ifstream file(path);
    if (!file)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    try {
        JsonValue doc = parseJson(buffer.str());
        // Verify the full key, not just the hashed file name: a hash
        // collision or a foreign file must read as a miss, never as a
        // wrong artifact.
        if (doc.at("kind").asString() != key.kind
            || doc.at("content").asString() != key.content.toHex()
            || doc.at("device").asString() != key.device.toHex()
            || doc.at("salt").asString() != key.salt) {
            SOUFFLE_WARN("cache file '" << path
                                        << "' holds a different key; "
                                           "treating as a miss");
            return std::nullopt;
        }
        return doc.at("payload").asString();
    } catch (const FatalError &err) {
        SOUFFLE_WARN("corrupt cache file '" << path << "' ("
                                            << err.what()
                                            << "); treating as a miss");
        return std::nullopt;
    }
}

void
ArtifactCache::storeToDisk(const ArtifactKey &key,
                           const std::string &payload)
{
    std::string path = diskPathFor(key);
    JsonWriter writer;
    writer.beginObject()
        .newline()
        .field("kind", key.kind)
        .newline()
        .field("content", key.content.toHex())
        .newline()
        .field("device", key.device.toHex())
        .newline()
        .field("salt", key.salt)
        .newline()
        .field("payload", payload)
        .newline()
        .endObject();
    std::ofstream file(path, std::ios::trunc);
    if (!file) {
        SOUFFLE_WARN("cannot write cache file '" << path << "'");
        return;
    }
    file << writer.str() << '\n';
    ++counters.diskWrites;
}

} // namespace souffle
