#pragma once

/**
 * @file
 * Work-stealing thread pool + deterministic parallel loops.
 *
 * The compile pipeline is embarrassingly parallel across independent
 * items (TEs inside `AutoScheduler::scheduleAll`, batch buckets inside
 * the serving module cache, models inside the bench sweeps). This
 * module provides the one pool those layers share, under a hard
 * determinism contract:
 *
 *   **Output is byte-identical at every thread count.** `parallelFor`
 *   assigns work by index, not by completion order: item i always
 *   computes the same value into the same slot, results are joined in
 *   index order, and nothing in a parallelized path may read the
 *   clock, iteration order of shared containers, or any other
 *   scheduling-dependent state. Only *counters* (memo hits, candidate
 *   evaluations) may vary across thread counts, because two workers
 *   can race to compute the same memoized value — both compute the
 *   identical result, so artifacts are unaffected.
 *
 * Pool structure: one deque per worker. A task submitted from a worker
 * thread goes to that worker's own deque (LIFO pop keeps nested loops
 * cache-hot); external submissions are distributed round-robin. An
 * idle worker steals from the front of a sibling's deque. `jobs` counts
 * execution lanes *including the caller*: a pool with jobs=1 spawns no
 * threads and `parallelFor` degenerates to a plain serial loop.
 *
 * Nesting: `parallelFor` from inside a worker task is fine — the
 * calling lane claims indices itself and, while waiting for stragglers,
 * executes other pending pool tasks instead of blocking, so nested
 * loops cannot deadlock the pool.
 *
 * Exceptions: every index still runs (no cancellation — which indices
 * executed must not depend on timing), every thrown exception is
 * recorded, and the one with the **lowest index** is rethrown in the
 * caller — the same exception a serial loop would have surfaced.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace souffle {

/** The pool. Construction spawns the workers; destruction drains every
 *  already-submitted task, then joins. Not copyable/movable. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @p jobs execution lanes including the caller (min 1), so the
     *  pool spawns `jobs - 1` worker threads. */
    explicit ThreadPool(int jobs);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains: every submitted task runs before the workers join. */
    ~ThreadPool();

    /** Execution lanes (worker threads + the calling lane). */
    int jobs() const { return static_cast<int>(workers.size()) + 1; }

    /**
     * Enqueue @p task. From a worker thread it lands on that worker's
     * own deque; otherwise it is distributed round-robin. Must not be
     * called while the pool is being destroyed.
     */
    void submit(Task task);

    /**
     * Pop-and-run one pending task if any exists (own deque first,
     * then steal). Used by lanes that are waiting on a parallel loop
     * so they help instead of blocking. Returns false when every deque
     * is empty.
     */
    bool tryRunOneTask();

    /**
     * The process-wide pool, created on first use with
     * `defaultJobs()` lanes. All compile-layer parallelism
     * (`parallelFor` with a null pool) goes through this instance.
     */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of @p jobs lanes (clamped to
     * >= 1). Drains the old pool first. Call from the top of main()
     * (e.g. `--jobs=N`), never while parallel work is in flight.
     */
    static void setGlobalJobs(int jobs);

    /** Lane count of the global pool (without forcing its creation
     *  beyond what `global()` would do). */
    static int globalJobs();

    /**
     * Default lane count: `SOUFFLE_JOBS` from the environment when set
     * (clamped to [1, 256]), else `std::thread::hardware_concurrency`.
     */
    static int defaultJobs();

  private:
    /** One worker's state: its deque under its own mutex. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(int self);
    bool popFrom(int queue_index, bool steal, Task &out);
    /** Find + pop one task for lane @p self (own LIFO, then steal). */
    bool findTask(int self, Task &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;
    /** Tasks submitted but not yet popped (all deques combined). */
    std::atomic<int64_t> queued{0};
    /** Round-robin cursor for external submissions. */
    std::atomic<uint64_t> nextQueue{0};
    std::mutex sleepMutex;
    std::condition_variable sleepCv;
    bool stopping = false;
};

namespace detail {

/** Shared state of one parallelFor: an index claim counter, a done
 *  counter, and the lowest-index exception. */
struct ParallelJob
{
    const std::function<void(int64_t)> *body = nullptr;
    int64_t total = 0;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
    int64_t errorIndex = -1;

    /** Claim-and-run indices until the range is exhausted. */
    void runClaims();
};

} // namespace detail

/**
 * Run `body(i)` for every i in [0, n), distributing indices over
 * @p pool (the global pool when null). Blocks until every index
 * completed; rethrows the lowest-index exception if any body threw.
 * Deterministic: the value computed for each index is independent of
 * the thread count, and with jobs=1 this is exactly a serial loop.
 */
void parallelFor(int64_t n, const std::function<void(int64_t)> &body,
                 ThreadPool *pool = nullptr);

/**
 * Index-ordered parallel map: `out[i] = fn(i)` for i in [0, n), with
 * the same determinism contract as `parallelFor`. The result type must
 * be default-constructible and move-assignable.
 */
template <typename Fn>
auto
parallelMap(int64_t n, Fn &&fn, ThreadPool *pool = nullptr)
    -> std::vector<std::invoke_result_t<Fn &, int64_t>>
{
    using Result = std::invoke_result_t<Fn &, int64_t>;
    std::vector<Result> out(static_cast<size_t>(n));
    parallelFor(
        n, [&](int64_t i) { out[static_cast<size_t>(i)] = fn(i); },
        pool);
    return out;
}

} // namespace souffle
