#include "common/thread_pool.h"

#include <chrono>
#include <cstdlib>

#include "common/logging.h"

namespace souffle {

namespace {

/** Thread-local index of the worker this thread runs as (-1 for
 *  threads outside any pool). Indexes the owning pool's queues; valid
 *  only while `tlsPool` matches the pool being asked. */
thread_local ThreadPool *tlsPool = nullptr;
thread_local int tlsWorker = -1;

} // namespace

ThreadPool::ThreadPool(int jobs)
{
    const int lanes = std::max(1, jobs);
    queues.reserve(static_cast<size_t>(lanes) - 1);
    for (int i = 0; i < lanes - 1; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(queues.size());
    for (int i = 0; i < static_cast<int>(queues.size()); ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex);
        stopping = true;
    }
    sleepCv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
    // Drain semantics: workers only exit once every deque is empty,
    // so any task submitted before destruction has run by now.
}

void
ThreadPool::submit(Task task)
{
    SOUFFLE_CHECK(!queues.empty(),
                  "submit() on a single-lane pool (jobs=1); run the "
                  "task inline instead");
    int target;
    if (tlsPool == this && tlsWorker >= 0) {
        target = tlsWorker;
    } else {
        target = static_cast<int>(
            nextQueue.fetch_add(1, std::memory_order_relaxed)
            % queues.size());
    }
    {
        std::lock_guard<std::mutex> lock(queues[target]->mutex);
        queues[target]->tasks.push_back(std::move(task));
    }
    queued.fetch_add(1, std::memory_order_release);
    sleepCv.notify_one();
}

bool
ThreadPool::popFrom(int queue_index, bool steal, Task &out)
{
    WorkerQueue &queue = *queues[queue_index];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty())
        return false;
    if (steal) {
        out = std::move(queue.tasks.front());
        queue.tasks.pop_front();
    } else {
        out = std::move(queue.tasks.back());
        queue.tasks.pop_back();
    }
    queued.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

bool
ThreadPool::findTask(int self, Task &out)
{
    // Own deque first (LIFO: the task pushed last is the hottest),
    // then sweep the siblings in ring order stealing FIFO (the task
    // its owner would run last).
    if (self >= 0 && popFrom(self, /*steal=*/false, out))
        return true;
    const int n = static_cast<int>(queues.size());
    const int start = self >= 0 ? self + 1 : 0;
    for (int step = 0; step < n; ++step) {
        const int victim = (start + step) % n;
        if (victim == self)
            continue;
        if (popFrom(victim, /*steal=*/true, out))
            return true;
    }
    return false;
}

bool
ThreadPool::tryRunOneTask()
{
    if (queues.empty())
        return false;
    Task task;
    const int self = tlsPool == this ? tlsWorker : -1;
    if (!findTask(self, task))
        return false;
    task();
    return true;
}

void
ThreadPool::workerLoop(int self)
{
    tlsPool = this;
    tlsWorker = self;
    for (;;) {
        Task task;
        if (findTask(self, task)) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex);
        if (stopping && queued.load(std::memory_order_acquire) == 0)
            return;
        // The timeout bounds the window of a lost wakeup (a submit
        // that lands between the failed findTask and this wait).
        sleepCv.wait_for(lock, std::chrono::milliseconds(1));
    }
}

namespace detail {

void
ParallelJob::runClaims()
{
    for (;;) {
        const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total)
            return;
        try {
            (*body)(i);
        } catch (...) {
            // Record the lowest-index exception — the one a serial
            // loop would have surfaced. No cancellation: which indices
            // ran must never depend on timing.
            std::lock_guard<std::mutex> lock(mutex);
            if (errorIndex < 0 || i < errorIndex) {
                errorIndex = i;
                error = std::current_exception();
            }
        }
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
            std::lock_guard<std::mutex> lock(mutex);
            cv.notify_all();
        }
    }
}

} // namespace detail

void
parallelFor(int64_t n, const std::function<void(int64_t)> &body,
            ThreadPool *pool)
{
    if (n <= 0)
        return;
    if (pool == nullptr)
        pool = &ThreadPool::global();
    if (n == 1 || pool->jobs() <= 1) {
        // Serial reference path: the parallel path must be
        // byte-identical to this loop, including the exception
        // semantics — every index runs (no cancellation), and the
        // lowest-index exception is the one rethrown.
        std::exception_ptr error;
        for (int64_t i = 0; i < n; ++i) {
            try {
                body(i);
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    auto job = std::make_shared<detail::ParallelJob>();
    job->body = &body;
    job->total = n;
    // One helper per worker lane (capped by the item count): each
    // helper claims indices until the range is dry, so idle lanes
    // cost one no-op task at most.
    const int64_t helpers =
        std::min<int64_t>(pool->jobs() - 1, n - 1);
    for (int64_t h = 0; h < helpers; ++h)
        pool->submit([job] { job->runClaims(); });

    // The calling lane participates...
    job->runClaims();
    // ...then helps with *other* pending work (e.g. sibling loops of
    // a nested parallelFor) while stragglers finish, so a lane is
    // never parked while the pool has runnable tasks.
    while (job->done.load(std::memory_order_acquire) < n) {
        if (pool->tryRunOneTask())
            continue;
        std::unique_lock<std::mutex> lock(job->mutex);
        job->cv.wait_for(lock, std::chrono::microseconds(200), [&] {
            return job->done.load(std::memory_order_acquire) >= n;
        });
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

namespace {

std::mutex g_poolMutex;
std::unique_ptr<ThreadPool> g_pool;

ThreadPool &
globalPoolLocked(int jobs_if_absent)
{
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(jobs_if_absent);
    return *g_pool;
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_poolMutex);
    return globalPoolLocked(defaultJobs());
}

void
ThreadPool::setGlobalJobs(int jobs)
{
    std::lock_guard<std::mutex> lock(g_poolMutex);
    g_pool.reset(); // drains the old pool first
    g_pool = std::make_unique<ThreadPool>(std::max(1, jobs));
}

int
ThreadPool::globalJobs()
{
    return global().jobs();
}

int
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("SOUFFLE_JOBS")) {
        const int jobs = std::atoi(env);
        if (jobs >= 1)
            return std::min(jobs, 256);
        SOUFFLE_WARN("ignoring invalid SOUFFLE_JOBS='" << env << "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

} // namespace souffle
