#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace souffle {

void
JsonWriter::beginElement()
{
    if (afterKey) {
        // The comma (if any) was emitted before the key.
        afterKey = false;
        return;
    }
    if (!counts.empty() && counts.back() > 0)
        out += ',';
    if (!counts.empty())
        ++counts.back();
    if (pendingNewline) {
        pendingNewline = false;
        out += '\n';
        out.append(2 * counts.size(), ' ');
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    beginElement();
    out += '{';
    counts.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    counts.pop_back();
    if (pendingNewline) {
        pendingNewline = false;
        out += '\n';
        out.append(2 * counts.size(), ' ');
    }
    out += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beginElement();
    out += '[';
    counts.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    counts.pop_back();
    if (pendingNewline) {
        pendingNewline = false;
        out += '\n';
        out.append(2 * counts.size(), ' ');
    }
    out += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    beginElement();
    out += '"';
    out += jsonEscape(name);
    out += style == Style::kSpaced ? "\": " : "\":";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    beginElement();
    out += '"';
    out += jsonEscape(text);
    out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    beginElement();
    // JSON has no inf/nan literals; clamp to null.
    if (!std::isfinite(number)) {
        out += "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", number);
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t number)
{
    beginElement();
    out += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<int64_t>(number));
}

JsonWriter &
JsonWriter::value(size_t number)
{
    return value(static_cast<int64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    beginElement();
    out += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::newline()
{
    pendingNewline = true;
    return *this;
}

} // namespace souffle
