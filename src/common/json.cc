#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace souffle {

void
JsonWriter::beginElement()
{
    if (afterKey) {
        // The comma (if any) was emitted before the key.
        afterKey = false;
        return;
    }
    if (!counts.empty() && counts.back() > 0)
        out += ',';
    if (!counts.empty())
        ++counts.back();
    if (pendingNewline) {
        pendingNewline = false;
        out += '\n';
        out.append(2 * counts.size(), ' ');
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    beginElement();
    out += '{';
    counts.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    counts.pop_back();
    if (pendingNewline) {
        pendingNewline = false;
        out += '\n';
        out.append(2 * counts.size(), ' ');
    }
    out += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beginElement();
    out += '[';
    counts.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    counts.pop_back();
    if (pendingNewline) {
        pendingNewline = false;
        out += '\n';
        out.append(2 * counts.size(), ' ');
    }
    out += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    beginElement();
    out += '"';
    out += jsonEscape(name);
    out += style == Style::kSpaced ? "\": " : "\":";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    beginElement();
    out += '"';
    out += jsonEscape(text);
    out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    beginElement();
    // JSON has no inf/nan literals; clamp to null.
    if (!std::isfinite(number)) {
        out += "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g", doubleDigits, number);
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t number)
{
    beginElement();
    out += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<int64_t>(number));
}

JsonWriter &
JsonWriter::value(size_t number)
{
    return value(static_cast<int64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    beginElement();
    out += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::newline()
{
    pendingNewline = true;
    return *this;
}

JsonWriter &
JsonWriter::setDoublePrecision(int digits)
{
    SOUFFLE_REQUIRE(digits >= 1 && digits <= 17,
                    "JSON double precision must be in [1, 17], got "
                        << digits);
    doubleDigits = digits;
    return *this;
}

// --------------------------------------------------------------------
// Reader.

bool
JsonValue::asBool() const
{
    SOUFFLE_REQUIRE(isBool(), "JSON value is not a bool");
    return boolValue;
}

double
JsonValue::asNumber() const
{
    SOUFFLE_REQUIRE(isNumber(), "JSON value is not a number");
    return numberValue;
}

int64_t
JsonValue::asInt() const
{
    double number = asNumber();
    SOUFFLE_REQUIRE(std::nearbyint(number) == number
                        && number >= -9.007199254740992e15
                        && number <= 9.007199254740992e15,
                    "JSON number " << number
                                   << " is not an exact int64");
    return static_cast<int64_t>(number);
}

const std::string &
JsonValue::asString() const
{
    SOUFFLE_REQUIRE(isString(), "JSON value is not a string");
    return stringValue;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    SOUFFLE_REQUIRE(isArray(), "JSON value is not an array");
    return arrayItems;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    SOUFFLE_REQUIRE(isObject(), "JSON value is not an object");
    return objectMembers;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[name, member] : objectMembers)
        if (name == key)
            return &member;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *member = find(key);
    SOUFFLE_REQUIRE(member != nullptr,
                    "JSON object has no member '" << key << "'");
    return *member;
}

namespace detail {

/** Recursive-descent parser over the full JSON grammar. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue();
        skipWhitespace();
        if (pos != text.size())
            fail("trailing characters after JSON document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        SOUFFLE_FATAL("JSON parse error at offset " << pos << ": "
                                                    << what);
    }

    void
    skipWhitespace()
    {
        while (pos < text.size()
               && (text[pos] == ' ' || text[pos] == '\t'
                   || text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char wanted)
    {
        if (peek() != wanted)
            fail(std::string("expected '") + wanted + "'");
        ++pos;
    }

    bool
    consumeLiteral(const char *literal)
    {
        size_t len = std::strlen(literal);
        if (text.compare(pos, len, literal) != 0)
            return false;
        pos += len;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWhitespace();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            JsonValue value;
            value.valueKind = JsonValue::Kind::kString;
            value.stringValue = parseString();
            return value;
          }
          case 't':
            if (!consumeLiteral("true"))
                fail("invalid literal");
            {
                JsonValue value;
                value.valueKind = JsonValue::Kind::kBool;
                value.boolValue = true;
                return value;
            }
          case 'f':
            if (!consumeLiteral("false"))
                fail("invalid literal");
            {
                JsonValue value;
                value.valueKind = JsonValue::Kind::kBool;
                return value;
            }
          case 'n':
            if (!consumeLiteral("null"))
                fail("invalid literal");
            return JsonValue{};
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue value;
        value.valueKind = JsonValue::Kind::kObject;
        skipWhitespace();
        if (peek() == '}') {
            ++pos;
            return value;
        }
        while (true) {
            skipWhitespace();
            std::string name = parseString();
            skipWhitespace();
            expect(':');
            value.objectMembers.emplace_back(std::move(name),
                                             parseValue());
            skipWhitespace();
            char next = peek();
            ++pos;
            if (next == '}')
                return value;
            if (next != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue value;
        value.valueKind = JsonValue::Kind::kArray;
        skipWhitespace();
        if (peek() == ']') {
            ++pos;
            return value;
        }
        while (true) {
            value.arrayItems.push_back(parseValue());
            skipWhitespace();
            char next = peek();
            ++pos;
            if (next == ']')
                return value;
            if (next != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string result;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            char ch = text[pos++];
            if (ch == '"')
                return result;
            if (static_cast<unsigned char>(ch) < 0x20)
                fail("unescaped control character in string");
            if (ch != '\\') {
                result += ch;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape sequence");
            char esc = text[pos++];
            switch (esc) {
              case '"': result += '"'; break;
              case '\\': result += '\\'; break;
              case '/': result += '/'; break;
              case 'b': result += '\b'; break;
              case 'f': result += '\f'; break;
              case 'n': result += '\n'; break;
              case 'r': result += '\r'; break;
              case 't': result += '\t'; break;
              case 'u': result += parseUnicodeEscape(); break;
              default: fail("invalid escape sequence");
            }
        }
    }

    /**
     * \uXXXX escape, encoded back to UTF-8. Surrogate pairs are
     * accepted; lone surrogates become U+FFFD, matching the common
     * lenient-decoder behavior (the writer never emits them).
     */
    std::string
    parseUnicodeEscape()
    {
        uint32_t code = parseHex4();
        if (code >= 0xd800 && code <= 0xdbff) {
            if (pos + 1 < text.size() && text[pos] == '\\'
                && text[pos + 1] == 'u') {
                pos += 2;
                uint32_t low = parseHex4();
                if (low >= 0xdc00 && low <= 0xdfff)
                    code = 0x10000 + ((code - 0xd800) << 10)
                           + (low - 0xdc00);
                else
                    code = 0xfffd;
            } else {
                code = 0xfffd;
            }
        } else if (code >= 0xdc00 && code <= 0xdfff) {
            code = 0xfffd;
        }
        std::string utf8;
        if (code < 0x80) {
            utf8 += static_cast<char>(code);
        } else if (code < 0x800) {
            utf8 += static_cast<char>(0xc0 | (code >> 6));
            utf8 += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            utf8 += static_cast<char>(0xe0 | (code >> 12));
            utf8 += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            utf8 += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            utf8 += static_cast<char>(0xf0 | (code >> 18));
            utf8 += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            utf8 += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            utf8 += static_cast<char>(0x80 | (code & 0x3f));
        }
        return utf8;
    }

    uint32_t
    parseHex4()
    {
        uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
            char ch = peek();
            ++pos;
            code <<= 4;
            if (ch >= '0' && ch <= '9')
                code |= static_cast<uint32_t>(ch - '0');
            else if (ch >= 'a' && ch <= 'f')
                code |= static_cast<uint32_t>(ch - 'a' + 10);
            else if (ch >= 'A' && ch <= 'F')
                code |= static_cast<uint32_t>(ch - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return code;
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos;
        if (peek() == '-')
            ++pos;
        if (pos >= text.size()
            || !(text[pos] >= '0' && text[pos] <= '9'))
            fail("invalid number");
        if (text[pos] == '0')
            ++pos;
        else
            while (pos < text.size() && text[pos] >= '0'
                   && text[pos] <= '9')
                ++pos;
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size()
                || !(text[pos] >= '0' && text[pos] <= '9'))
                fail("digit required after decimal point");
            while (pos < text.size() && text[pos] >= '0'
                   && text[pos] <= '9')
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size()
                && (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size()
                || !(text[pos] >= '0' && text[pos] <= '9'))
                fail("digit required in exponent");
            while (pos < text.size() && text[pos] >= '0'
                   && text[pos] <= '9')
                ++pos;
        }
        JsonValue value;
        value.valueKind = JsonValue::Kind::kNumber;
        value.numberValue =
            std::strtod(text.substr(start, pos - start).c_str(),
                        nullptr);
        return value;
    }

    const std::string &text;
    size_t pos = 0;
};

} // namespace detail

JsonValue
parseJson(const std::string &text)
{
    return detail::JsonParser(text).parseDocument();
}

} // namespace souffle
