#include "common/logging.h"

namespace souffle {

namespace {
int g_verbosity = 1;
} // namespace

int
logVerbosity()
{
    return g_verbosity;
}

void
setLogVerbosity(int level)
{
    g_verbosity = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream full;
    full << msg << " @ " << file << ":" << line;
    throw FatalError(full.str());
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (g_verbosity >= 1) {
        std::cerr << "warn: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
}

void
informImpl(const std::string &msg)
{
    if (g_verbosity >= 2)
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace souffle
