#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace souffle {

double
percentileNearestRank(const std::vector<double> &sorted,
                      double percentile)
{
    if (sorted.empty())
        return 0.0;
    const double n = static_cast<double>(sorted.size());
    const double raw = std::ceil(percentile / 100.0 * n);
    // Clamp before the size_t cast: a negative raw rank would wrap.
    size_t rank = raw < 1.0 ? 1 : static_cast<size_t>(raw);
    rank = std::min(rank, sorted.size());
    return sorted[rank - 1];
}

LatencySummary
summarizeLatencies(const std::vector<double> &samples)
{
    LatencySummary summary;
    if (samples.empty())
        return summary;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    summary.count = static_cast<int>(sorted.size());
    summary.minUs = sorted.front();
    summary.maxUs = sorted.back();
    summary.p50Us = percentileNearestRank(sorted, 50.0);
    summary.p95Us = percentileNearestRank(sorted, 95.0);
    summary.p99Us = percentileNearestRank(sorted, 99.0);
    double sum = 0.0;
    for (double v : sorted)
        sum += v;
    summary.meanUs = sum / static_cast<double>(sorted.size());
    return summary;
}

} // namespace souffle
