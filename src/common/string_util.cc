#include "common/string_util.h"

#include <cmath>
#include <cstdio>
#include <iomanip>

namespace souffle {

std::string
shapeToString(const std::vector<int64_t> &shape)
{
    return "[" + joinToString(shape, ", ") + "]";
}

std::string
bytesToString(double bytes)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (bytes >= 1024.0 * 1024.0 * 1024.0)
        os << bytes / (1024.0 * 1024.0 * 1024.0) << " GB";
    else if (bytes >= 1024.0 * 1024.0)
        os << bytes / (1024.0 * 1024.0) << " MB";
    else if (bytes >= 1024.0)
        os << bytes / 1024.0 << " KB";
    else
        os << bytes << " B";
    return os.str();
}

std::string
timeToString(double micros)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (micros >= 1000.0)
        os << micros / 1000.0 << " ms";
    else
        os << micros << " us";
    return os.str();
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

} // namespace souffle
