#include "common/string_util.h"

#include <cmath>
#include <iomanip>

namespace souffle {

std::string
shapeToString(const std::vector<int64_t> &shape)
{
    return "[" + joinToString(shape, ", ") + "]";
}

std::string
bytesToString(double bytes)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (bytes >= 1024.0 * 1024.0 * 1024.0)
        os << bytes / (1024.0 * 1024.0 * 1024.0) << " GB";
    else if (bytes >= 1024.0 * 1024.0)
        os << bytes / (1024.0 * 1024.0) << " MB";
    else if (bytes >= 1024.0)
        os << bytes / 1024.0 << " KB";
    else
        os << bytes << " B";
    return os.str();
}

std::string
timeToString(double micros)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (micros >= 1000.0)
        os << micros / 1000.0 << " ms";
    else
        os << micros << " us";
    return os.str();
}

} // namespace souffle
