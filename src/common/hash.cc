#include "common/hash.h"

#include <bit>
#include <cstdio>

#include "common/logging.h"

namespace souffle {

namespace {

// FNV-1a 64-bit constants for lane A; lane B uses a different offset
// basis (a random odd 64-bit constant) so the two lanes decorrelate.
constexpr uint64_t kFnvOffsetA = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvOffsetB = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::string
Fingerprint::toHex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return std::string(buf);
}

Fingerprint
Fingerprint::fromHex(const std::string &hex)
{
    SOUFFLE_REQUIRE(hex.size() == 32,
                    "fingerprint hex must be 32 digits, got '" << hex
                                                               << "'");
    Fingerprint fp;
    uint64_t words[2] = {0, 0};
    for (int w = 0; w < 2; ++w) {
        for (int i = 0; i < 16; ++i) {
            const char ch = hex[static_cast<size_t>(w * 16 + i)];
            uint64_t digit;
            if (ch >= '0' && ch <= '9')
                digit = static_cast<uint64_t>(ch - '0');
            else if (ch >= 'a' && ch <= 'f')
                digit = static_cast<uint64_t>(ch - 'a' + 10);
            else if (ch >= 'A' && ch <= 'F')
                digit = static_cast<uint64_t>(ch - 'A' + 10);
            else
                SOUFFLE_FATAL("bad fingerprint hex digit '"
                              << ch << "' in '" << hex << "'");
            words[w] = (words[w] << 4) | digit;
        }
    }
    fp.hi = words[0];
    fp.lo = words[1];
    return fp;
}

FingerprintHasher::FingerprintHasher()
    : laneA(kFnvOffsetA), laneB(kFnvOffsetB)
{
}

void
FingerprintHasher::absorbByte(uint8_t byte)
{
    laneA = (laneA ^ byte) * kFnvPrime;
    laneB = (laneB ^ byte) * kFnvPrime;
    // Decorrelate the lanes: B additionally rotates, so swapping two
    // bytes changes the lanes differently.
    laneB = std::rotl(laneB, 13);
    ++length;
}

void
FingerprintHasher::absorbWord(uint64_t word)
{
    // Little-endian value serialization, independent of host layout.
    for (int i = 0; i < 8; ++i)
        absorbByte(static_cast<uint8_t>((word >> (8 * i)) & 0xff));
}

FingerprintHasher &
FingerprintHasher::absorb(uint64_t value)
{
    absorbWord(value);
    return *this;
}

FingerprintHasher &
FingerprintHasher::absorb(int64_t value)
{
    absorbWord(static_cast<uint64_t>(value));
    return *this;
}

FingerprintHasher &
FingerprintHasher::absorb(int value)
{
    absorbWord(static_cast<uint64_t>(static_cast<int64_t>(value)));
    return *this;
}

FingerprintHasher &
FingerprintHasher::absorb(bool value)
{
    absorbByte(value ? 1 : 0);
    return *this;
}

FingerprintHasher &
FingerprintHasher::absorb(double value)
{
    // +0.0 and -0.0 have distinct bit patterns but compare equal;
    // canonicalize so equal values hash equal.
    if (value == 0.0)
        value = 0.0;
    absorbWord(std::bit_cast<uint64_t>(value));
    return *this;
}

FingerprintHasher &
FingerprintHasher::absorb(const std::string &text)
{
    absorbWord(static_cast<uint64_t>(text.size()));
    for (char ch : text)
        absorbByte(static_cast<uint8_t>(ch));
    return *this;
}

FingerprintHasher &
FingerprintHasher::absorb(std::span<const int64_t> values)
{
    absorbWord(static_cast<uint64_t>(values.size()));
    for (int64_t v : values)
        absorbWord(static_cast<uint64_t>(v));
    return *this;
}

FingerprintHasher &
FingerprintHasher::absorb(const std::vector<int64_t> &values)
{
    return absorb(std::span<const int64_t>(values));
}

FingerprintHasher &
FingerprintHasher::absorb(const Fingerprint &fp)
{
    absorbWord(fp.hi);
    absorbWord(fp.lo);
    return *this;
}

Fingerprint
FingerprintHasher::finish() const
{
    Fingerprint fp;
    fp.hi = mix64(laneA ^ mix64(length));
    fp.lo = mix64(laneB + mix64(laneA));
    // Reserve the all-zero value for "unset".
    if (!fp.valid())
        fp.lo = 1;
    return fp;
}

} // namespace souffle
