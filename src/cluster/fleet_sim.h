#pragma once

/**
 * @file
 * souffle-fleet: a deterministic discrete-event simulator of a
 * serving fleet built from the single-device souffle-serve loop.
 *
 * One run advances simulated time through six event sources — trace
 * arrivals, retry timers, fault fail/recover events, replica spin-up
 * completions, autoscaler ticks and per-replica events (stream
 * completions, forced-flush deadlines) — and at each instant applies
 * a fixed phase order (failures, recoveries, spin-ups, autoscaler,
 * arrivals+retries merged by (time, id), completions, dispatch).
 * Everything is seeded and counter-PRNG driven; no wall clock enters
 * any simulated quantity, so a `FleetConfig` reproduces bit-for-bit
 * regardless of host speed or `--jobs` (the compile thread count only
 * affects wall-clock compile ms and tile-search memo counters, which
 * the JSON report deliberately omits).
 *
 * Fleet semantics on top of the device loop:
 *  - the router (src/cluster/router.h) picks a live replica per
 *    request; admission there sheds by SLO priority.
 *  - a failed replica strands its queued and in-flight requests;
 *    stranded requests retry on another replica after exponential
 *    backoff (`RetryConfig`), up to maxAttempts, else count failed.
 *  - recovered and autoscaled replicas warm from the fleet's shared
 *    compile service (src/cluster/compile_service.h) — zero candidate
 *    evaluations, `warmLoadUs` per bucket — instead of recompiling.
 *  - the autoscaler adds a replica (after `spinUpDelayUs`) when mean
 *    live queue depth exceeds `scaleUpDepth`, and retires an idle one
 *    above `minReplicas` when it falls below `scaleDownDepth`.
 */

#include "cluster/fleet.h"
#include "cluster/fleet_report.h"

namespace souffle::cluster {

/** Run one fleet simulation to completion. */
FleetReport runFleetSim(const FleetConfig &config);

} // namespace souffle::cluster
