#include "cluster/fleet_report.h"

#include <sstream>

#include "common/json.h"
#include "common/string_util.h"

namespace souffle::cluster {

double
TenantStats::attainment() const
{
    if (offered == 0)
        return 0.0;
    return static_cast<double>(sloAttained)
           / static_cast<double>(offered);
}

double
ReplicaStats::utilization() const
{
    if (upUs <= 0.0 || numStreams <= 0)
        return 0.0;
    return busyUs / (upUs * numStreams);
}

double
FleetReport::throughputRps() const
{
    if (makespanUs <= 0.0)
        return 0.0;
    return static_cast<double>(completedRequests)
           / (makespanUs / 1.0e6);
}

double
FleetReport::attainment() const
{
    int attained = 0;
    int offered = 0;
    for (const TenantStats &tenant : tenants) {
        attained += tenant.sloAttained;
        offered += tenant.offered;
    }
    if (offered == 0)
        return 0.0;
    return static_cast<double>(attained)
           / static_cast<double>(offered);
}

std::string
FleetReport::renderText() const
{
    std::ostringstream os;
    os << "fleet-sim: policy " << policy << ", seed " << seed << ", "
       << initialReplicas << " initial replica(s), retry "
       << (retryEnabled ? "on" : "off") << ", autoscaler "
       << (autoscalerEnabled ? "on" : "off") << "\n";
    os << "  requests: " << totalRequests << " offered, "
       << completedRequests << " completed, " << shedRequests
       << " shed, " << failedRequests << " failed, "
       << retriedRequests << " retried\n";
    os << "  fleet: " << throughputRps()
       << " req/s over makespan " << timeToString(makespanUs)
       << ", SLO attainment " << attainment() * 100.0 << "%\n";
    os << "  compiles: " << compileCount << " bucket fill(s), "
       << fleetCompiles << " fleet-cold compile(s), "
       << candidateEvals << " candidate eval(s), " << compileMsTotal
       << " ms compiling\n";
    for (const TenantStats &tenant : tenants) {
        os << "  tenant " << tenant.name << " (" << tenant.model
           << ", prio " << tenant.priority << "): " << tenant.offered
           << " offered, " << tenant.completed << " completed, "
           << tenant.shedRequests << " shed, "
           << tenant.failedRequests << " failed, " << tenant.retries
           << " retried, attainment " << tenant.attainment() * 100.0
           << "% of target " << timeToString(tenant.sloTargetUs)
           << "\n";
        os << "    latency: p50 " << timeToString(tenant.latency.p50Us)
           << ", p95 " << timeToString(tenant.latency.p95Us)
           << ", p99 " << timeToString(tenant.latency.p99Us)
           << ", mean " << timeToString(tenant.latency.meanUs)
           << ", max " << timeToString(tenant.latency.maxUs) << "\n";
    }
    for (const ReplicaStats &replica : replicas) {
        os << "  replica " << replica.id << " (" << replica.device
           << ", " << replica.numStreams << " stream(s), "
           << replica.finalState << "): utilization "
           << replica.utilization() * 100.0 << "%, "
           << replica.batches << " batch(es), " << replica.served
           << " served, " << replica.bucketFills << " fill(s), "
           << replica.shedRequests << " shed\n";
    }
    if (!failureTimeline.empty()) {
        os << "  failures:";
        for (const TimelineEvent &event : failureTimeline) {
            os << " [" << timeToString(event.timeUs) << " "
               << event.kind << " r" << event.replica;
            if (event.kind == "fail")
                os << " stranding " << event.detail;
            os << "]";
        }
        os << "\n";
    }
    if (!autoscalerTimeline.empty()) {
        os << "  autoscaler:";
        for (const TimelineEvent &event : autoscalerTimeline)
            os << " [" << timeToString(event.timeUs) << " "
               << event.kind << " r" << event.replica << " live "
               << event.detail << "]";
        os << "\n";
    }
    if (!spinUps.empty()) {
        os << "  spin-ups:";
        for (const SpinUpRecord &record : spinUps)
            os << " [r" << record.replica << " @"
               << timeToString(record.atUs) << " warmed "
               << record.fills << " bucket(s), "
               << record.candidateEvals << " eval(s)]";
        os << "\n";
    }
    return os.str();
}

std::string
FleetReport::renderJson() const
{
    JsonWriter json;
    json.setDoublePrecision(17);
    json.beginObject()
        .newline()
        .field("policy", policy)
        .newline()
        .field("seed", static_cast<int64_t>(seed))
        .newline()
        .field("initial_replicas", initialReplicas)
        .newline()
        .field("retry_enabled", retryEnabled)
        .newline()
        .field("autoscaler_enabled", autoscalerEnabled)
        .newline()
        .field("total_requests", totalRequests)
        .newline()
        .field("completed", completedRequests)
        .newline()
        .field("shed", shedRequests)
        .newline()
        .field("failed", failedRequests)
        .newline()
        .field("retried", retriedRequests)
        .newline()
        .field("makespan_us", makespanUs)
        .newline()
        .field("throughput_rps", throughputRps())
        .newline()
        .field("slo_attainment", attainment())
        .newline()
        .field("compile_count", compileCount)
        .newline()
        .field("fleet_compiles", fleetCompiles)
        .newline()
        .key("tenants")
        .beginArray();
    for (const TenantStats &tenant : tenants) {
        json.beginObject()
            .field("name", tenant.name)
            .field("model", tenant.model)
            .field("priority", tenant.priority)
            .field("slo_target_us", tenant.sloTargetUs)
            .field("offered", tenant.offered)
            .field("completed", tenant.completed)
            .field("shed", tenant.shedRequests)
            .field("failed", tenant.failedRequests)
            .field("retried", tenant.retries)
            .field("slo_attained", tenant.sloAttained)
            .field("attainment", tenant.attainment())
            .field("latency_p50_us", tenant.latency.p50Us)
            .field("latency_p95_us", tenant.latency.p95Us)
            .field("latency_p99_us", tenant.latency.p99Us)
            .field("latency_mean_us", tenant.latency.meanUs)
            .field("latency_max_us", tenant.latency.maxUs)
            .endObject();
    }
    json.endArray()
        .newline()
        .key("replicas")
        .beginArray();
    for (const ReplicaStats &replica : replicas) {
        json.beginObject()
            .field("id", replica.id)
            .field("device", replica.device)
            .field("num_streams", replica.numStreams)
            .field("final_state", replica.finalState)
            .field("up_us", replica.upUs)
            .field("busy_us", replica.busyUs)
            .field("utilization", replica.utilization())
            .field("batches", replica.batches)
            .field("served", replica.served)
            .field("bucket_fills", replica.bucketFills)
            .field("shed", replica.shedRequests)
            .endObject();
    }
    json.endArray()
        .newline()
        .key("failures")
        .beginArray();
    for (const TimelineEvent &event : failureTimeline) {
        json.beginObject()
            .field("t_us", event.timeUs)
            .field("kind", event.kind)
            .field("replica", event.replica)
            .field("detail", event.detail)
            .endObject();
    }
    json.endArray()
        .newline()
        .key("autoscaler")
        .beginArray();
    for (const TimelineEvent &event : autoscalerTimeline) {
        json.beginObject()
            .field("t_us", event.timeUs)
            .field("kind", event.kind)
            .field("replica", event.replica)
            .field("detail", event.detail)
            .endObject();
    }
    json.endArray()
        .newline()
        .key("spin_ups")
        .beginArray();
    for (const SpinUpRecord &record : spinUps) {
        json.beginObject()
            .field("replica", record.replica)
            .field("t_us", record.atUs)
            .field("fills", record.fills)
            .endObject();
    }
    json.endArray().newline().endObject();
    return json.str() + "\n";
}

} // namespace souffle::cluster
