#include "cluster/replica.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "models/zoo.h"

namespace souffle::cluster {

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/** The batchers' own admission is disabled — shedding is decided by
 *  the replica-level graduated bound. */
constexpr int kUnboundedQueue = 1 << 30;

} // namespace

const char *
replicaStateName(ReplicaState state)
{
    switch (state) {
      case ReplicaState::kUp:
        return "up";
      case ReplicaState::kStarting:
        return "starting";
      case ReplicaState::kDown:
        return "down";
    }
    return "unknown";
}

Replica::Replica(int id, ReplicaSpec spec,
                 serve::BatcherConfig batcher_cfg, int max_queue_depth,
                 double cold_compile_us, double warm_load_us,
                 FleetCompileService &service,
                 ReplicaState initial_state)
    : replicaId(id), replicaSpec(std::move(spec)),
      deviceSpec(DeviceSpec::byName(replicaSpec.device)),
      batcherTemplate(std::move(batcher_cfg)),
      maxQueueDepth(max_queue_depth), coldCompileUs(cold_compile_us),
      warmLoadUs(warm_load_us), service(service),
      lifecycle(initial_state)
{
    SOUFFLE_REQUIRE(replicaSpec.numStreams >= 1,
                    "replica needs >= 1 stream, got "
                        << replicaSpec.numStreams);
    SOUFFLE_REQUIRE(maxQueueDepth >= 1,
                    "replica queue bound must be >= 1, got "
                        << maxQueueDepth);
    batcherTemplate.maxQueueDepth = kUnboundedQueue;
    freeAt.assign(static_cast<size_t>(replicaSpec.numStreams), 0.0);
}

serve::DynamicBatcher &
Replica::queueFor(const std::string &model)
{
    auto it = queues.find(model);
    if (it == queues.end()) {
        serve::BatcherConfig config = batcherTemplate;
        if (!modelSupportsBatching(model))
            config.buckets = {1};
        it = queues
                 .emplace(model,
                          serve::DynamicBatcher(std::move(config)))
                 .first;
    }
    return it->second;
}

int
Replica::queueDepth() const
{
    int depth = 0;
    for (const auto &[model, queue] : queues)
        depth += queue.depth();
    return depth;
}

bool
Replica::warmFor(const std::string &model) const
{
    auto it = warmSet.lower_bound(std::make_pair(model, 0));
    return it != warmSet.end() && it->first == model;
}

int
Replica::busyStreams(double now_us) const
{
    int busy = 0;
    for (double free : freeAt)
        if (free > now_us)
            ++busy;
    return busy;
}

bool
Replica::idle(double now_us) const
{
    return queueDepth() == 0 && busyStreams(now_us) == 0
           && inFlight.empty();
}

bool
Replica::admit(int request_id, const std::string &model, int priority,
               double now_us)
{
    SOUFFLE_REQUIRE(isUp(), "admit on a replica that is "
                                << replicaStateName(lifecycle));
    const int shift = std::clamp(priority, 0, 30);
    const int bound = std::max(1, maxQueueDepth >> shift);
    if (queueDepth() >= bound) {
        ++shed;
        return false;
    }
    queueFor(model).enqueue(serve::Request{request_id, now_us},
                            now_us);
    return true;
}

std::pair<const serve::CachedModule *, double>
Replica::warmBucket(const std::string &model, int bucket)
{
    const AcquireResult acquired =
        service.acquire(replicaSpec.device, model, bucket);
    const auto key = std::make_pair(model, bucket);
    double stall_us = 0.0;
    if (warmSet.insert(key).second) {
        stall_us = acquired.fleetCold ? coldCompileUs : warmLoadUs;
        ++fills;
        evals += acquired.candidateEvals;
    }
    return {acquired.module, stall_us};
}

int
Replica::dispatch(double now_us, bool drain)
{
    if (!isUp())
        return 0;
    int dispatched = 0;
    while (true) {
        int stream = -1;
        for (size_t i = 0; i < freeAt.size(); ++i) {
            if (freeAt[i] <= now_us) {
                stream = static_cast<int>(i);
                break;
            }
        }
        if (stream < 0)
            break;

        // Among ready batchers, serve the one whose oldest request
        // has waited longest (ties: model-name order via the map).
        serve::DynamicBatcher *best = nullptr;
        std::string best_model;
        int best_batch = 0;
        double best_arrival = kNever;
        for (auto &[model, queue] : queues) {
            const int batch = queue.readyBatch(now_us, drain);
            if (batch == 0)
                continue;
            const double arrival = queue.nextDeadlineUs()
                                   - queue.config().maxQueueDelayUs;
            if (arrival < best_arrival) {
                best = &queue;
                best_model = model;
                best_batch = batch;
                best_arrival = arrival;
            }
        }
        if (best == nullptr)
            break;

        const std::vector<serve::Request> batch =
            best->pop(best_batch);
        const auto [module, stall_us] =
            warmBucket(best_model, best_batch);
        const int busy = busyStreams(now_us) + 1;
        const double service_us =
            module->sim.totalUs
                * deviceSpec.streamContentionFactor(busy)
            + deviceSpec.streamDispatchUs + stall_us;
        const double done = now_us + service_us;
        freeAt[static_cast<size_t>(stream)] = done;
        busyTotalUs += service_us;
        ++batches;
        served += best_batch;
        ++dispatched;
        InFlight flight;
        flight.doneUs = done;
        flight.requestIds.reserve(batch.size());
        for (const serve::Request &request : batch)
            flight.requestIds.push_back(request.id);
        inFlight.push_back(std::move(flight));
    }
    return dispatched;
}

std::vector<Completion>
Replica::collectCompletions(double now_us)
{
    std::vector<Completion> completions;
    std::vector<InFlight> due;
    for (size_t i = 0; i < inFlight.size();) {
        if (inFlight[i].doneUs <= now_us) {
            due.push_back(std::move(inFlight[i]));
            inFlight.erase(inFlight.begin()
                           + static_cast<ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
    std::stable_sort(due.begin(), due.end(),
                     [](const InFlight &a, const InFlight &b) {
                         return a.doneUs < b.doneUs;
                     });
    for (const InFlight &flight : due) {
        for (int id : flight.requestIds)
            completions.push_back(Completion{id, flight.doneUs});
    }
    return completions;
}

double
Replica::nextEventUs(double now_us) const
{
    double next = kNever;
    if (!isUp())
        return next;
    for (double free : freeAt)
        if (free > now_us)
            next = std::min(next, free);
    for (const auto &[model, queue] : queues) {
        const double deadline = queue.nextDeadlineUs();
        if (deadline > now_us)
            next = std::min(next, deadline);
    }
    return next;
}

std::vector<int>
Replica::fail(double now_us)
{
    SOUFFLE_REQUIRE(lifecycle != ReplicaState::kDown,
                    "failing replica " << replicaId
                                       << " which is already down");
    std::vector<int> stranded;
    for (auto &[model, queue] : queues) {
        while (queue.depth() > 0) {
            for (const serve::Request &request : queue.pop(1))
                stranded.push_back(request.id);
        }
    }
    std::stable_sort(inFlight.begin(), inFlight.end(),
                     [](const InFlight &a, const InFlight &b) {
                         return a.doneUs < b.doneUs;
                     });
    for (const InFlight &flight : inFlight) {
        // Credit only the busy time actually spent before the crash.
        if (flight.doneUs > now_us)
            busyTotalUs -= flight.doneUs - now_us;
        for (int id : flight.requestIds)
            stranded.push_back(id);
    }
    inFlight.clear();
    queues.clear();
    warmSet.clear(); // a recovered node restarts cold
    std::fill(freeAt.begin(), freeAt.end(), 0.0);
    if (lifecycle == ReplicaState::kUp)
        upTotalUs += now_us - upSinceUs;
    lifecycle = ReplicaState::kDown;
    return stranded;
}

double
Replica::beginSpinUp(double now_us)
{
    SOUFFLE_REQUIRE(lifecycle == ReplicaState::kDown,
                    "spin-up of replica "
                        << replicaId << " which is "
                        << replicaStateName(lifecycle));
    lifecycle = ReplicaState::kStarting;
    const int fills_before = fills;
    const int64_t evals_before = evals;
    double warm_us = 0.0;
    for (const auto &[model, bucket] :
         service.warmEntries(replicaSpec.device))
        warm_us += warmBucket(model, bucket).second;
    spinUpFills = fills - fills_before;
    spinUpEvals = evals - evals_before;
    readyUs = now_us + warm_us;
    return warm_us;
}

void
Replica::completeSpinUp(double now_us)
{
    SOUFFLE_REQUIRE(lifecycle == ReplicaState::kStarting,
                    "completing spin-up of replica "
                        << replicaId << " which is "
                        << replicaStateName(lifecycle));
    lifecycle = ReplicaState::kUp;
    upSinceUs = now_us;
}

void
Replica::shutDown(double now_us)
{
    SOUFFLE_REQUIRE(isUp() && idle(now_us),
                    "scale-down requires an idle up replica");
    upTotalUs += now_us - upSinceUs;
    lifecycle = ReplicaState::kDown;
}

void
Replica::finalize(double now_us)
{
    if (lifecycle == ReplicaState::kUp) {
        upTotalUs += now_us - upSinceUs;
        upSinceUs = now_us;
    }
}

} // namespace souffle::cluster
