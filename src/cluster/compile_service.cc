#include "cluster/compile_service.h"

#include "common/logging.h"

namespace souffle::cluster {

FleetCompileService::FleetCompileService(bool tiny, SouffleOptions base,
                                         std::string artifact_dir)
    : tiny(tiny), base(std::move(base)),
      artifactDir(std::move(artifact_dir))
{
    if (!this->base.artifactCache)
        this->base.artifactCache = std::make_shared<ArtifactCache>();
    sharedArtifacts = this->base.artifactCache;
}

serve::ModuleCache &
FleetCompileService::cacheFor(const std::string &device)
{
    auto it = caches.find(device);
    if (it == caches.end()) {
        SouffleOptions options = base;
        options.device = DeviceSpec::byName(device);
        options.artifactCache = sharedArtifacts;
        it = caches
                 .emplace(device,
                          std::make_unique<serve::ModuleCache>(
                              tiny, std::move(options), artifactDir))
                 .first;
    }
    return *it->second;
}

AcquireResult
FleetCompileService::acquire(const std::string &device,
                             const std::string &model, int bucket)
{
    serve::ModuleCache &cache = cacheFor(device);
    const int misses_before = cache.misses();
    const int loads_before = cache.artifactLoads();
    AcquireResult result;
    result.module = &cache.get(model, bucket);
    const bool filled = cache.misses() > misses_before;
    // An artifact-store load is a fill without a compile: it joins
    // the warm set (spinning-up replicas can fetch it) but counts as
    // fleet-warm — the offline compile already paid the search.
    const bool loaded = cache.artifactLoads() > loads_before;
    result.fleetCold = filled && !loaded;
    if (filled)
        warm[device].emplace(model, bucket);
    if (result.fleetCold) {
        result.candidateEvals =
            result.module->compiled.passStats.counterTotal(
                "candidates");
        ++compiles;
        evals += result.candidateEvals;
    }
    return result;
}

double
FleetCompileService::compileMsTotal() const
{
    double total = 0.0;
    for (const auto &[device, cache] : caches)
        total += cache->compileMsTotal();
    return total;
}

std::vector<std::pair<std::string, int>>
FleetCompileService::warmEntries(const std::string &device) const
{
    auto it = warm.find(device);
    if (it == warm.end())
        return {};
    return {it->second.begin(), it->second.end()};
}

} // namespace souffle::cluster
