#include "cluster/compile_service.h"

#include "common/logging.h"

namespace souffle::cluster {

FleetCompileService::FleetCompileService(bool tiny, SouffleOptions base)
    : tiny(tiny), base(std::move(base))
{
    if (!this->base.artifactCache)
        this->base.artifactCache = std::make_shared<ArtifactCache>();
    sharedArtifacts = this->base.artifactCache;
}

serve::ModuleCache &
FleetCompileService::cacheFor(const std::string &device)
{
    auto it = caches.find(device);
    if (it == caches.end()) {
        SouffleOptions options = base;
        options.device = DeviceSpec::byName(device);
        options.artifactCache = sharedArtifacts;
        it = caches
                 .emplace(device,
                          std::make_unique<serve::ModuleCache>(
                              tiny, std::move(options)))
                 .first;
    }
    return *it->second;
}

AcquireResult
FleetCompileService::acquire(const std::string &device,
                             const std::string &model, int bucket)
{
    serve::ModuleCache &cache = cacheFor(device);
    const int misses_before = cache.misses();
    AcquireResult result;
    result.module = &cache.get(model, bucket);
    result.fleetCold = cache.misses() > misses_before;
    if (result.fleetCold) {
        result.candidateEvals =
            result.module->compiled.passStats.counterTotal(
                "candidates");
        ++compiles;
        evals += result.candidateEvals;
        warm[device].emplace(model, bucket);
    }
    return result;
}

double
FleetCompileService::compileMsTotal() const
{
    double total = 0.0;
    for (const auto &[device, cache] : caches)
        total += cache->compileMsTotal();
    return total;
}

std::vector<std::pair<std::string, int>>
FleetCompileService::warmEntries(const std::string &device) const
{
    auto it = warm.find(device);
    if (it == warm.end())
        return {};
    return {it->second.begin(), it->second.end()};
}

} // namespace souffle::cluster
