#pragma once

/**
 * @file
 * Configuration types for souffle-fleet, the cluster-level serving
 * simulator (src/cluster/fleet_sim.h): tenants with SLO classes,
 * heterogeneous replica specs, routing policies, retry/backoff,
 * autoscaling and fault injection. Everything is seeded and
 * wall-clock-free, so a `FleetConfig` reproduces bit-for-bit.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/traffic.h"
#include "compiler/options.h"
#include "serve/batcher.h"

namespace souffle::cluster {

/** Service-level objective of one tenant class. */
struct SloClass
{
    /**
     * Admission priority: 0 is the most important. As a replica's
     * queue fills, lower-priority (numerically higher) tenants are
     * shed earlier — priority p is admitted only while the queue
     * holds fewer than `maxQueueDepth >> p` requests.
     */
    int priority = 0;
    /** A completed request attains its SLO when its end-to-end
     *  latency (completion - first arrival) is within this bound. */
    double latencyTargetUs = 100.0e3;
};

/** One traffic class: a model plus its SLO and traffic share. */
struct TenantSpec
{
    std::string name = "default";
    /** Zoo model this tenant's requests run. */
    std::string model = "BERT";
    /** Relative share of generated traffic. */
    double weight = 1.0;
    SloClass slo;
};

/** One replica slot: a device preset plus its execution lanes. */
struct ReplicaSpec
{
    /** DeviceSpec::byName preset ("a100", "v100", "h100"). */
    std::string device = "a100";
    /** Concurrent simulated streams on this replica. */
    int numStreams = 2;
};

/** Request-to-replica routing policy. */
enum class RouterPolicy : uint8_t {
    kRoundRobin,  ///< rotate over live replicas
    kLeastLoaded, ///< smallest queue depth (tie: lowest index)
    kCacheAffinity, ///< prefer replicas where the model is warm
};

/** Short policy name ("round-robin", "least-loaded",
 *  "cache-affinity"). */
const char *routerPolicyName(RouterPolicy policy);

/** Inverse of `routerPolicyName`; throws FatalError on unknown
 *  names, listing the valid ones. */
RouterPolicy routerPolicyByName(const std::string &name);

/** Retry policy for requests stranded by a replica failure. */
struct RetryConfig
{
    bool enabled = true;
    /** Total attempts including the first dispatch. */
    int maxAttempts = 3;
    /** Backoff before attempt k+1: base * multiplier^(k-1). */
    double backoffBaseUs = 2000.0;
    double backoffMultiplier = 2.0;
};

/** Queue-depth-driven autoscaler. */
struct AutoscalerConfig
{
    bool enabled = false;
    /** Scale-down floor on live replicas. */
    int minReplicas = 1;
    /** Scale-up ceiling on total replicas ever added. */
    int maxReplicas = 8;
    /** Evaluation cadence. */
    double evalIntervalUs = 10.0e3;
    /** Mean live queue depth above which a replica is added. */
    double scaleUpDepth = 12.0;
    /** Mean live queue depth below which an idle replica retires. */
    double scaleDownDepth = 0.5;
    /** Provisioning delay before a new replica starts warming. */
    double spinUpDelayUs = 20.0e3;
    /** Spec of scaled-up replicas. */
    ReplicaSpec newReplica;
};

/** One scheduled replica outage. */
struct FaultEvent
{
    int replica = 0;
    double failAtUs = 0.0;
    double recoverAtUs = 0.0;
};

/** Fault injection: an explicit schedule and/or a seeded generator. */
struct FaultSpec
{
    /** Explicit outages, used verbatim. */
    std::vector<FaultEvent> schedule;
    /** Mean time between failures per replica; 0 = generator off. */
    double mtbfUs = 0.0;
    /** Mean time to recovery for generated failures. */
    double mttrUs = 20.0e3;
    uint64_t seed = 7;
};

/**
 * Expand @p spec into a sorted outage list over @p num_replicas
 * replicas and @p duration_us: the explicit schedule plus seeded
 * exponential failures (inverse-transform over the counter PRNG).
 */
std::vector<FaultEvent> generateFaults(const FaultSpec &spec,
                                       int num_replicas,
                                       double duration_us);

/** Full configuration of one fleet simulation. */
struct FleetConfig
{
    /** Use the test-sized zoo variants. */
    bool tiny = false;
    /** Compiler level shared by every bucket compile; the device is
     *  overridden per replica from its `ReplicaSpec::device`. */
    SouffleOptions compiler;

    std::vector<TenantSpec> tenants = {TenantSpec{}};
    std::vector<ReplicaSpec> replicas = {ReplicaSpec{},
                                         ReplicaSpec{}};

    RouterPolicy policy = RouterPolicy::kLeastLoaded;
    /** Cache-affinity spills to least-loaded when the best warm
     *  replica's queue is deeper than this. */
    int affinitySpillDepth = 16;

    /** Batching knobs shared by every (replica, model) queue; the
     *  queue bound is the fleet-level `maxQueueDepthPerReplica`. */
    serve::BatcherConfig batcher;
    /** Total queued requests one replica holds before shedding
     *  (graduated per priority, see SloClass::priority). */
    int maxQueueDepthPerReplica = 64;

    /** Generated traffic; ignored when `trace` is non-empty. */
    TrafficSpec traffic;
    /** Pre-generated or replayed trace (tenant indices must be in
     *  range of `tenants`). */
    std::vector<FleetRequest> trace;

    RetryConfig retry;
    AutoscalerConfig autoscaler;
    FaultSpec faults;

    /** Simulated stall charged when a dispatch (or spin-up warm)
     *  needs a bucket the fleet has never compiled for this device
     *  class — the cold tile-search + codegen time. */
    double coldCompileUs = 30.0e3;
    /** Simulated stall for warming a bucket from the fleet's shared
     *  compile cache (artifact fetch + load, no search). */
    double warmLoadUs = 500.0;

    /**
     * Compiled-artifact store root (compiler/artifact_io.h) shared
     * by every device-class module cache. A bucket whose artifact
     * exists there is loaded, not compiled: the acquire counts as
     * fleet-warm (charged `warmLoadUs`, zero candidate evaluations)
     * even on its first touch.
     */
    std::string artifactDir;
};

} // namespace souffle::cluster
