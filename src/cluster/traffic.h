#pragma once

/**
 * @file
 * Fleet traffic generation: a deterministic non-homogeneous Poisson
 * request stream with diurnal modulation and seeded bursts, feeding
 * the cluster simulator (src/cluster/fleet_sim.h).
 *
 * The instantaneous rate at simulated time t is
 *
 *   rate(t) = base * (1 + A * sin(2*pi*t / period))      [diurnal]
 *           * (inBurst(t) ? burstMultiplier : 1)          [bursty]
 *
 * where burst windows are decided per `burstWindowUs` grid cell by a
 * seeded coin flip: a window that comes up "burst" runs at the
 * multiplied rate for its first `burstDurationUs`. Arrivals are drawn
 * by thinning a homogeneous Poisson process at the peak rate — every
 * draw comes from the same splitmix-style counter PRNG the serving
 * workload generator uses, so the same spec reproduces bit-for-bit
 * (no `<random>`, no wall clock).
 *
 * Each request is assigned a tenant by a weighted seeded draw; the
 * tenant index points into `FleetConfig::tenants`, which carries the
 * model and SLO class.
 *
 * Traces round-trip to disk as JSON (`saveTrace`/`loadTrace`, 17
 * significant digits so arrival times are bit-exact), so generated
 * fleet traffic can be archived and externally-recorded request logs
 * can be replayed through the simulator.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace souffle::cluster {

/** One request in the fleet timeline. */
struct FleetRequest
{
    /** Dense id in arrival order. */
    int id = 0;
    /** Arrival time in simulated microseconds. */
    double arrivalUs = 0.0;
    /** Index into the fleet's tenant list. */
    int tenant = 0;
};

/** Diurnal + bursty non-homogeneous Poisson source description. */
struct TrafficSpec
{
    /** Baseline arrival rate (requests per second). */
    double baseRatePerSec = 2000.0;
    /** Generation horizon in simulated microseconds. */
    double durationUs = 200.0e3;
    /** PRNG seed; same seed -> identical trace. */
    uint64_t seed = 42;

    /** Diurnal modulation amplitude in [0, 1); 0 = flat. */
    double diurnalAmplitude = 0.0;
    /** Period of the diurnal sine (a scaled "day"). */
    double diurnalPeriodUs = 100.0e3;

    /** Rate multiplier inside a burst; 1 = bursts off. */
    double burstMultiplier = 1.0;
    /** Probability that a window starts a burst, in [0, 1]. */
    double burstProbability = 0.0;
    /** Burst decision grid: one coin flip per window. */
    double burstWindowUs = 20.0e3;
    /** How long a burst window stays hot (clamped to the window). */
    double burstDurationUs = 5.0e3;
};

/** Instantaneous rate (req/s) of @p spec at @p t_us; exposed so tests
 *  can pin the diurnal/burst shape independent of the thinning. */
double trafficRateAtUs(const TrafficSpec &spec, double t_us);

/**
 * Materialize the request stream for @p spec, assigning tenants by
 * @p tenant_weights (relative, must be positive; a single implicit
 * tenant when empty). Sorted by arrival time, ids dense.
 */
std::vector<FleetRequest>
generateTraffic(const TrafficSpec &spec,
                const std::vector<double> &tenant_weights = {});

/** Serialize @p trace as a JSON document (bit-exact doubles). */
std::string traceToJson(const std::vector<FleetRequest> &trace);

/**
 * Parse a trace produced by `traceToJson` (or an external request
 * log in the same format). Requests are re-sorted by arrival time
 * and re-indexed densely; throws FatalError on malformed input.
 */
std::vector<FleetRequest> traceFromJson(const std::string &text);

/** Write @p trace to @p path; throws FatalError on I/O failure. */
void saveTrace(const std::vector<FleetRequest> &trace,
               const std::string &path);

/** Read a trace from @p path; throws FatalError on I/O failure. */
std::vector<FleetRequest> loadTrace(const std::string &path);

} // namespace souffle::cluster
