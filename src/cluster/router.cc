#include "cluster/router.h"

#include "common/logging.h"

namespace souffle::cluster {

Router::Router(RouterPolicy policy, int affinity_spill_depth)
    : routerPolicy(policy), spillDepth(affinity_spill_depth)
{
    SOUFFLE_REQUIRE(spillDepth >= 1,
                    "affinity spill depth must be >= 1, got "
                        << spillDepth);
}

int
Router::pick(const std::vector<std::unique_ptr<Replica>> &replicas,
             const std::string &model)
{
    switch (routerPolicy) {
      case RouterPolicy::kRoundRobin:
        return pickRoundRobin(replicas);
      case RouterPolicy::kLeastLoaded:
        return pickLeastLoaded(replicas);
      case RouterPolicy::kCacheAffinity:
        return pickCacheAffinity(replicas, model);
    }
    return -1;
}

int
Router::pickRoundRobin(const std::vector<std::unique_ptr<Replica>> &rs)
{
    if (rs.empty())
        return -1;
    for (size_t step = 0; step < rs.size(); ++step) {
        const size_t index = (cursor + step) % rs.size();
        if (rs[index]->isUp()) {
            cursor = (index + 1) % rs.size();
            return static_cast<int>(index);
        }
    }
    return -1;
}

int
Router::pickLeastLoaded(const std::vector<std::unique_ptr<Replica>> &rs)
{
    int best = -1;
    int best_depth = 0;
    for (size_t i = 0; i < rs.size(); ++i) {
        if (!rs[i]->isUp())
            continue;
        const int depth = rs[i]->queueDepth();
        if (best < 0 || depth < best_depth) {
            best = static_cast<int>(i);
            best_depth = depth;
        }
    }
    return best;
}

int
Router::pickCacheAffinity(
    const std::vector<std::unique_ptr<Replica>> &rs,
    const std::string &model)
{
    int warm_best = -1;
    int warm_depth = 0;
    for (size_t i = 0; i < rs.size(); ++i) {
        if (!rs[i]->isUp() || !rs[i]->warmFor(model))
            continue;
        const int depth = rs[i]->queueDepth();
        if (warm_best < 0 || depth < warm_depth) {
            warm_best = static_cast<int>(i);
            warm_depth = depth;
        }
    }
    if (warm_best >= 0 && warm_depth <= spillDepth)
        return warm_best;
    return pickLeastLoaded(rs);
}

} // namespace souffle::cluster
