#pragma once

/**
 * @file
 * Request-to-replica routing for souffle-fleet.
 *
 * The router sees only routing-visible replica state (liveness, queue
 * depth, model warm sets) and picks a target index per request:
 *
 *  - *round-robin*: rotate a cursor over live replicas — oblivious to
 *    load and cache state, the fleet baseline.
 *  - *least-loaded*: smallest total queue depth among live replicas
 *    (ties: lowest index), the classic join-shortest-queue policy.
 *  - *cache-affinity*: prefer the least-loaded live replica that is
 *    already warm for the request's model, spilling to plain
 *    least-loaded when the best warm replica's queue exceeds
 *    `FleetConfig::affinitySpillDepth` (or no replica is warm yet).
 *    Keeping a model's traffic on its warm replicas is what lets the
 *    fleet compile each (model, bucket) once instead of once per
 *    replica — `tests/test_cluster.cc` pins that reduction.
 */

#include <memory>
#include <string>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/replica.h"

namespace souffle::cluster {

class Router
{
  public:
    Router(RouterPolicy policy, int affinity_spill_depth);

    /**
     * Index into @p replicas for a request of @p model, or -1 when no
     * replica is up. Never returns a non-kUp replica.
     */
    int pick(const std::vector<std::unique_ptr<Replica>> &replicas,
             const std::string &model);

    RouterPolicy policy() const { return routerPolicy; }

  private:
    int
    pickRoundRobin(const std::vector<std::unique_ptr<Replica>> &rs);
    static int
    pickLeastLoaded(const std::vector<std::unique_ptr<Replica>> &rs);
    int
    pickCacheAffinity(const std::vector<std::unique_ptr<Replica>> &rs,
                      const std::string &model);

    RouterPolicy routerPolicy;
    int spillDepth;
    /** Round-robin cursor (next index to try). */
    size_t cursor = 0;
};

} // namespace souffle::cluster
