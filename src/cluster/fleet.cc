#include "cluster/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace souffle::cluster {

namespace {

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double
uniform01(uint64_t seed, uint64_t index)
{
    const uint64_t bits = mix64(seed ^ mix64(index)) >> 11;
    return (static_cast<double>(bits) + 1.0) / 9007199254740993.0;
}

} // namespace

const char *
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
      case RouterPolicy::kRoundRobin:
        return "round-robin";
      case RouterPolicy::kLeastLoaded:
        return "least-loaded";
      case RouterPolicy::kCacheAffinity:
        return "cache-affinity";
    }
    return "unknown";
}

RouterPolicy
routerPolicyByName(const std::string &name)
{
    for (RouterPolicy policy :
         {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
          RouterPolicy::kCacheAffinity}) {
        if (name == routerPolicyName(policy))
            return policy;
    }
    SOUFFLE_FATAL("unknown router policy '"
                  << name
                  << "' (valid: round-robin, least-loaded, "
                     "cache-affinity)");
}

std::vector<FaultEvent>
generateFaults(const FaultSpec &spec, int num_replicas,
               double duration_us)
{
    std::vector<FaultEvent> faults = spec.schedule;
    if (spec.mtbfUs > 0.0) {
        SOUFFLE_REQUIRE(spec.mttrUs > 0.0,
                        "fault mttr must be positive, got "
                            << spec.mttrUs);
        for (int replica = 0; replica < num_replicas; ++replica) {
            double clock = 0.0;
            for (uint64_t i = 0;; ++i) {
                const uint64_t index =
                    static_cast<uint64_t>(replica) * 4096 + i;
                clock += -spec.mtbfUs
                         * std::log(uniform01(spec.seed, index));
                if (clock > duration_us)
                    break;
                FaultEvent fault;
                fault.replica = replica;
                fault.failAtUs = clock;
                fault.recoverAtUs = clock + spec.mttrUs;
                faults.push_back(fault);
                clock = fault.recoverAtUs;
            }
        }
    }
    for (const FaultEvent &fault : faults) {
        SOUFFLE_REQUIRE(fault.replica >= 0,
                        "fault replica must be >= 0, got "
                            << fault.replica);
        SOUFFLE_REQUIRE(fault.recoverAtUs > fault.failAtUs,
                        "fault recovery "
                            << fault.recoverAtUs
                            << " must follow the failure at "
                            << fault.failAtUs);
    }
    std::stable_sort(faults.begin(), faults.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         if (a.failAtUs != b.failAtUs)
                             return a.failAtUs < b.failAtUs;
                         return a.replica < b.replica;
                     });
    return faults;
}

} // namespace souffle::cluster
