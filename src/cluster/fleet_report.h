#pragma once

/**
 * @file
 * Everything measured over one fleet simulation, rendered as text or
 * JSON (mirroring serve::ServingReport).
 *
 * The JSON rendering is a determinism surface: `tests/test_cluster.cc`
 * and the CI gate diff it byte-for-byte across repeated runs and
 * across `--jobs` settings at a fixed seed. It therefore carries only
 * simulated-time quantities and counters that are functions of the
 * simulation (queue/routing/fault/autoscaler state, bucket fills,
 * fleet compiles) — never wall-clock compile milliseconds and never
 * the tile-search candidate/schedule-cache counters, which vary with
 * compile thread count (memo races, see src/compiler parallel notes).
 * Those stay available on the struct for tests and text rendering.
 */

#include <string>
#include <vector>

#include "common/stats.h"

namespace souffle::cluster {

/** Per-tenant outcomes and latency summary. */
struct TenantStats
{
    std::string name;
    std::string model;
    int priority = 0;
    double sloTargetUs = 0.0;

    /** Requests the trace offered this tenant. */
    int offered = 0;
    int completed = 0;
    /** Admission-control rejections (all attempts exhausted by
     *  shedding count here too). */
    int shedRequests = 0;
    /** Requests lost to replica failures after exhausting retries. */
    int failedRequests = 0;
    /** Re-dispatches after a replica failure. */
    int retries = 0;
    /** Completions within the SLO latency target. */
    int sloAttained = 0;

    /** Summary over completed end-to-end latencies (us). */
    LatencySummary latency;

    /** SLO attainment over offered load: attained / offered. */
    double attainment() const;
};

/** Per-replica utilization and serving counters. */
struct ReplicaStats
{
    int id = 0;
    std::string device;
    int numStreams = 0;
    /** replicaStateName at the end of the run. */
    std::string finalState;

    double upUs = 0.0;
    double busyUs = 0.0;
    int batches = 0;
    int served = 0;
    /** (model, bucket) warm-set fills — the replica's share of fleet
     *  compile work (cache-affinity routing minimizes the sum). */
    int bucketFills = 0;
    int shedRequests = 0;

    /** busy time over up time, across the stream pool. */
    double utilization() const;
};

/** One autoscaler or failure timeline entry. */
struct TimelineEvent
{
    double timeUs = 0.0;
    /** "fail" / "recover" / "scale-up" / "ready" / "scale-down". */
    std::string kind;
    int replica = 0;
    /** Event payload: stranded requests for "fail", live replica
     *  count after the event for autoscaler entries, 0 otherwise. */
    int detail = 0;
};

/** One replica spin-up (autoscale or recovery) warm record — the
 *  zero-candidate-eval pin in tests/test_cluster.cc reads these. */
struct SpinUpRecord
{
    int replica = 0;
    double atUs = 0.0;
    /** Buckets warmed from the fleet cache. */
    int fills = 0;
    /** Tile-search candidate evaluations during the warm — zero by
     *  construction (warming only what the fleet already compiled). */
    int64_t candidateEvals = 0;
};

class FleetReport
{
  public:
    // ----- run configuration echo ----------------------------------------
    std::string policy;
    uint64_t seed = 0;
    int initialReplicas = 0;
    bool retryEnabled = true;
    bool autoscalerEnabled = false;

    // ----- fleet-wide outcomes -------------------------------------------
    int totalRequests = 0;
    int completedRequests = 0;
    int shedRequests = 0;
    int failedRequests = 0;
    int retriedRequests = 0;
    double makespanUs = 0.0;

    /** Sum of per-replica bucket fills — total fleet compile work. */
    int compileCount = 0;
    /** Distinct fleet-cold compiles the shared service performed. */
    int fleetCompiles = 0;
    /** Candidate evaluations across those compiles. NOT in JSON:
     *  varies with compile thread count. */
    int64_t candidateEvals = 0;
    /** Wall-clock compile ms. NOT in JSON: wall clock. */
    double compileMsTotal = 0.0;

    std::vector<TenantStats> tenants;
    std::vector<ReplicaStats> replicas;
    std::vector<TimelineEvent> failureTimeline;
    std::vector<TimelineEvent> autoscalerTimeline;
    std::vector<SpinUpRecord> spinUps;

    // ----- derived --------------------------------------------------------
    /** Completed requests per second of simulated makespan. */
    double throughputRps() const;
    /** Fleet-wide SLO attainment: sum attained / sum offered. */
    double attainment() const;

    // ----- renderers ------------------------------------------------------
    std::string renderText() const;
    /** Byte-stable at fixed seed (see file comment). */
    std::string renderJson() const;
};

} // namespace souffle::cluster
