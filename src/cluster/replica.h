#pragma once

/**
 * @file
 * One fleet replica: the souffle-serve device loop (bucketed dynamic
 * batching over N simulated streams with contention, see
 * src/serve/server.h) wrapped as an event-driven node the cluster
 * simulator can route to, fail, recover and autoscale.
 *
 * Differences from the single-device loop, all fleet-level concerns:
 *
 *  - *multi-model*: a replica holds one `serve::DynamicBatcher` per
 *    model it serves (batches never mix models — each (model, bucket)
 *    is its own compiled module). Dispatch picks, among ready
 *    batchers, the one whose oldest request has waited longest.
 *  - *priority admission*: one total queue bound covers all of a
 *    replica's queues, graduated by SLO priority — priority p is
 *    admitted only below `maxQueueDepth >> p`, so best-effort
 *    traffic sheds first as the queue fills (the batchers' own
 *    bounds are disabled; shedding is decided here).
 *  - *warm set*: the first dispatch of a (model, bucket) this replica
 *    has not warmed charges a compile stall from the fleet's shared
 *    `FleetCompileService` — `coldCompileUs` when the fleet itself is
 *    cold, `warmLoadUs` when the bucket warms from the fleet cache.
 *  - *lifecycle*: up / starting (spin-up delay + warm) / down, with
 *    `fail()` harvesting queued and in-flight requests for the
 *    retry machinery and up-time accounting for utilization.
 */

#include <map>
#include <string>
#include <vector>

#include "cluster/compile_service.h"
#include "cluster/fleet.h"
#include "gpu/device.h"
#include "serve/batcher.h"

namespace souffle::cluster {

enum class ReplicaState : uint8_t { kUp, kStarting, kDown };

/** Short state name ("up", "starting", "down"). */
const char *replicaStateName(ReplicaState state);

/** One completed request, reported when simulated time passes it. */
struct Completion
{
    int requestId = 0;
    double doneUs = 0.0;
};

class Replica
{
  public:
    /**
     * @p batcher_cfg seeds every per-model queue (its own
     * maxQueueDepth is overridden — admission is the replica-level
     * @p max_queue_depth, graduated by priority). Initial replicas
     * start kUp; autoscaled replicas are created kDown and go
     * through beginSpinUp once provisioned.
     */
    Replica(int id, ReplicaSpec spec, serve::BatcherConfig batcher_cfg,
            int max_queue_depth, double cold_compile_us,
            double warm_load_us, FleetCompileService &service,
            ReplicaState initial_state = ReplicaState::kUp);

    // ----- identity & state ----------------------------------------------
    int id() const { return replicaId; }
    const ReplicaSpec &spec() const { return replicaSpec; }
    const DeviceSpec &device() const { return deviceSpec; }
    ReplicaState state() const { return lifecycle; }
    bool isUp() const { return lifecycle == ReplicaState::kUp; }
    /** When a kStarting replica turns kUp. */
    double readyAtUs() const { return readyUs; }

    // ----- routing-visible load ------------------------------------------
    /** Total queued requests across every model queue. */
    int queueDepth() const;
    /** True when any bucket of @p model is warm on this replica. */
    bool warmFor(const std::string &model) const;
    /** Streams busy at @p now_us. */
    int busyStreams(double now_us) const;
    /** True when no request is queued and no stream is busy. */
    bool idle(double now_us) const;

    // ----- admission ------------------------------------------------------
    /**
     * Admit a request for @p model at @p priority, or shed (returns
     * false) when the graduated queue bound is reached. @p request_id
     * is the fleet-wide id; @p now_us stamps the queue-delay clock.
     */
    bool admit(int request_id, const std::string &model, int priority,
               double now_us);

    // ----- event loop -----------------------------------------------------
    /**
     * Dispatch every ready batch onto free streams at @p now_us
     * (acquiring modules — and compile stalls — from the fleet
     * service). @p drain forces partial batches out. Returns the
     * number of batches dispatched.
     */
    int dispatch(double now_us, bool drain);

    /** Pop completions with doneUs <= @p now_us, oldest first. */
    std::vector<Completion> collectCompletions(double now_us);

    /** Next self-generated event strictly after @p now_us (stream
     *  completion or forced-flush deadline); +inf when none. */
    double nextEventUs(double now_us) const;

    // ----- lifecycle ------------------------------------------------------
    /**
     * Fail at @p now_us: every queued and in-flight request is
     * returned (for retry/failure accounting), the warm set is lost
     * (a recovered node starts cold), and busy time is credited only
     * up to the failure.
     */
    std::vector<int> fail(double now_us);

    /**
     * Begin spin-up at @p now_us (after provisioning): warm every
     * bucket the fleet cache holds for this device class, charging
     * `warmLoadUs` each, and become kUp when that completes. Returns
     * the simulated warm time (0 when the fleet has nothing yet).
     */
    double beginSpinUp(double now_us);
    /** Promote kStarting -> kUp once readyAtUs() has passed. */
    void completeSpinUp(double now_us);
    /** Retire an idle replica (autoscaler scale-down). */
    void shutDown(double now_us);

    /** Close the up-time ledger at the end of the simulation. */
    void finalize(double now_us);

    // ----- accounting -----------------------------------------------------
    double upUs() const { return upTotalUs; }
    double busyUs() const { return busyTotalUs; }
    int batchesDispatched() const { return batches; }
    int requestsServed() const { return served; }
    /** (model, bucket) fills on this replica (warm-set inserts). */
    int bucketFills() const { return fills; }
    /** Candidate evaluations this replica's fills triggered. */
    int64_t candidateEvals() const { return evals; }
    /** Fills/evals of the most recent beginSpinUp call. */
    int lastSpinUpFills() const { return spinUpFills; }
    int64_t lastSpinUpEvals() const { return spinUpEvals; }
    int shedCount() const { return shed; }

  private:
    /** The queue for @p model, created on first use. */
    serve::DynamicBatcher &queueFor(const std::string &model);
    /** Warm (model, bucket), charging the fleet-cold or fleet-warm
     *  stall; returns (module, stall_us). */
    std::pair<const serve::CachedModule *, double>
    warmBucket(const std::string &model, int bucket);

    int replicaId;
    ReplicaSpec replicaSpec;
    DeviceSpec deviceSpec;
    serve::BatcherConfig batcherTemplate;
    int maxQueueDepth;
    double coldCompileUs;
    double warmLoadUs;
    FleetCompileService &service;

    ReplicaState lifecycle = ReplicaState::kUp;
    double readyUs = 0.0;
    /** Up-time ledger: when the current kUp stretch began. */
    double upSinceUs = 0.0;
    double upTotalUs = 0.0;

    /** Model -> its bucketed queue (ordered: deterministic sweeps). */
    std::map<std::string, serve::DynamicBatcher> queues;
    /** (model, bucket) warm on this replica. */
    std::set<std::pair<std::string, int>> warmSet;

    /** Per-stream next-free time. */
    std::vector<double> freeAt;
    /** In-flight batch: completion time + member request ids
     *  (ascending doneUs; ties keep dispatch order). */
    struct InFlight
    {
        double doneUs = 0.0;
        std::vector<int> requestIds;
    };
    std::vector<InFlight> inFlight;

    double busyTotalUs = 0.0;
    int batches = 0;
    int served = 0;
    int fills = 0;
    int64_t evals = 0;
    int spinUpFills = 0;
    int64_t spinUpEvals = 0;
    int shed = 0;
};

} // namespace souffle::cluster
