#pragma once

/**
 * @file
 * The fleet's shared compile service.
 *
 * Production fleets do not recompile per replica: compilation
 * artifacts live in a shared content-addressed store, and a replica
 * that needs a (model, batch) bucket first asks the fleet. This
 * service models exactly that on top of the machinery PRs 3-5 built:
 * one `serve::ModuleCache` per device class (modules are
 * shape- and device-specialized), all of them sharing a single
 * `ArtifactCache` so schedule artifacts transfer wherever the device
 * fingerprint matches.
 *
 * The observable split the fleet simulator cares about:
 *
 *  - *fleet-cold* acquire: no replica of this device class has ever
 *    compiled the bucket — a real compile runs (tile search,
 *    candidate evaluations > 0 unless schedules transfer), and the
 *    simulator charges `FleetConfig::coldCompileUs`.
 *  - *fleet-warm* acquire: the bucket is already in the device
 *    class's module cache — a pure lookup with zero candidate
 *    evaluations, charged `FleetConfig::warmLoadUs` (artifact fetch).
 *
 * A newly autoscaled or recovered replica warms itself by acquiring
 * every bucket the service already holds for its device class
 * (`warmEntries`) — by construction that performs zero candidate
 * evaluations, which `tests/test_cluster.cc` pins.
 */

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "serve/module_cache.h"

namespace souffle::cluster {

/** Outcome of acquiring one (device, model, bucket). */
struct AcquireResult
{
    /** Module + memoized device timing; owned by the service. */
    const serve::CachedModule *module = nullptr;
    /** True when this acquire compiled (first use on this device
     *  class fleet-wide). */
    bool fleetCold = false;
    /** Tile-search candidate evaluations this acquire performed
     *  (0 on fleet-warm acquires). */
    int64_t candidateEvals = 0;
};

/** Fleet-wide compile service: per-device module caches over one
 *  shared artifact cache. Single-threaded from the simulator's event
 *  loop (compiles themselves still fan out over the thread pool). */
class FleetCompileService
{
  public:
    /**
     * @p tiny selects test-sized zoo variants; @p base fixes the
     * level/scheduler every compile uses (its device is overridden
     * per device class, its artifact cache replaced by the shared
     * one unless the caller seeded an instance to share). A
     * non-empty @p artifact_dir names a compiled-artifact store
     * (compiler/artifact_io.h): buckets found there are loaded, not
     * compiled, and their acquires count as fleet-warm.
     */
    FleetCompileService(bool tiny, SouffleOptions base,
                        std::string artifact_dir = "");

    /** The compiled module for @p bucket of @p model on device class
     *  @p device (a DeviceSpec preset name), compiling on first use. */
    AcquireResult acquire(const std::string &device,
                          const std::string &model, int bucket);

    /** Every (model, bucket) the fleet has compiled for @p device,
     *  sorted — what a spinning-up replica warms from. */
    std::vector<std::pair<std::string, int>>
    warmEntries(const std::string &device) const;

    /** Fleet-wide compiles actually performed (fleet-cold acquires). */
    int fleetCompiles() const { return compiles; }
    /** Total candidate evaluations across those compiles. */
    int64_t candidateEvals() const { return evals; }
    /** Wall-clock compile time across every device class (ms). */
    double compileMsTotal() const;

    /** The shared schedule/artifact store under every module cache. */
    ArtifactCache &artifactCache() { return *sharedArtifacts; }

    const SouffleOptions &options() const { return base; }

  private:
    serve::ModuleCache &cacheFor(const std::string &device);

    bool tiny;
    SouffleOptions base;
    /** Compiled-artifact store root (empty: always compile). */
    std::string artifactDir;
    std::shared_ptr<ArtifactCache> sharedArtifacts;
    /** Device preset name -> module cache for that class. */
    std::map<std::string, std::unique_ptr<serve::ModuleCache>> caches;
    /** Device class -> (model, bucket) entries compiled fleet-wide
     *  (sorted, so `warmEntries` iterates deterministically). */
    std::map<std::string, std::set<std::pair<std::string, int>>> warm;
    int compiles = 0;
    int64_t evals = 0;
};

} // namespace souffle::cluster
