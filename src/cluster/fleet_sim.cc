#include "cluster/fleet_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>

#include "cluster/replica.h"
#include "cluster/router.h"
#include "common/logging.h"

namespace souffle::cluster {

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/** Lifecycle of one traced request through the fleet. */
struct Pending
{
    int tenant = 0;
    /** First (trace) arrival — the latency clock's zero. */
    double firstArrivalUs = 0.0;
    /** Dispatch attempts so far (first dispatch included). */
    int attempts = 0;
    bool done = false;
    /** Shed or failed permanently. */
    bool dead = false;
};

struct TenantAcc
{
    int offered = 0;
    int completed = 0;
    int shed = 0;
    int failed = 0;
    int retries = 0;
    int attained = 0;
    std::vector<double> latencies;
};

void
validateConfig(const FleetConfig &config)
{
    SOUFFLE_REQUIRE(!config.tenants.empty(),
                    "fleet needs at least one tenant");
    SOUFFLE_REQUIRE(!config.replicas.empty(),
                    "fleet needs at least one replica");
    for (const TenantSpec &tenant : config.tenants) {
        SOUFFLE_REQUIRE(tenant.slo.priority >= 0,
                        "tenant '" << tenant.name
                                   << "' priority must be >= 0, got "
                                   << tenant.slo.priority);
        SOUFFLE_REQUIRE(tenant.slo.latencyTargetUs > 0.0,
                        "tenant '" << tenant.name
                                   << "' SLO target must be positive");
    }
    if (config.retry.enabled) {
        SOUFFLE_REQUIRE(config.retry.maxAttempts >= 1,
                        "retry maxAttempts must be >= 1, got "
                            << config.retry.maxAttempts);
        SOUFFLE_REQUIRE(config.retry.backoffBaseUs > 0.0,
                        "retry backoff base must be positive, got "
                            << config.retry.backoffBaseUs);
        SOUFFLE_REQUIRE(config.retry.backoffMultiplier >= 1.0,
                        "retry backoff multiplier must be >= 1, got "
                            << config.retry.backoffMultiplier);
    }
    if (config.autoscaler.enabled) {
        SOUFFLE_REQUIRE(config.autoscaler.evalIntervalUs > 0.0,
                        "autoscaler interval must be positive");
        SOUFFLE_REQUIRE(config.autoscaler.minReplicas >= 0,
                        "autoscaler minReplicas must be >= 0");
        SOUFFLE_REQUIRE(config.autoscaler.maxReplicas
                            >= static_cast<int>(
                                config.replicas.size()),
                        "autoscaler maxReplicas must cover the "
                        "initial fleet");
        SOUFFLE_REQUIRE(config.autoscaler.spinUpDelayUs >= 0.0,
                        "autoscaler spin-up delay must be >= 0");
    }
}

TimelineEvent
makeEvent(double time_us, const char *kind, int replica, int detail)
{
    TimelineEvent event;
    event.timeUs = time_us;
    event.kind = kind;
    event.replica = replica;
    event.detail = detail;
    return event;
}

} // namespace

FleetReport
runFleetSim(const FleetConfig &config)
{
    validateConfig(config);

    // ----- trace ----------------------------------------------------------
    std::vector<FleetRequest> trace;
    double horizonUs = 0.0;
    if (!config.trace.empty()) {
        trace = config.trace;
        std::stable_sort(trace.begin(), trace.end(),
                         [](const FleetRequest &a,
                            const FleetRequest &b) {
                             if (a.arrivalUs != b.arrivalUs)
                                 return a.arrivalUs < b.arrivalUs;
                             return a.id < b.id;
                         });
        for (size_t i = 0; i < trace.size(); ++i) {
            trace[i].id = static_cast<int>(i);
            SOUFFLE_REQUIRE(trace[i].arrivalUs >= 0.0,
                            "trace arrival must be >= 0, got "
                                << trace[i].arrivalUs);
            SOUFFLE_REQUIRE(
                trace[i].tenant >= 0
                    && trace[i].tenant
                           < static_cast<int>(config.tenants.size()),
                "trace tenant " << trace[i].tenant
                                << " out of range for "
                                << config.tenants.size()
                                << " tenant(s)");
        }
        // The spec's duration still floors the horizon so replaying
        // the trace a spec generates reports the same makespan.
        horizonUs = std::max(config.traffic.durationUs,
                             trace.empty() ? 0.0
                                           : trace.back().arrivalUs);
    } else {
        std::vector<double> weights;
        weights.reserve(config.tenants.size());
        for (const TenantSpec &tenant : config.tenants)
            weights.push_back(tenant.weight);
        trace = generateTraffic(config.traffic, weights);
        horizonUs = config.traffic.durationUs;
    }

    // ----- fleet ----------------------------------------------------------
    FleetCompileService service(config.tiny, config.compiler,
                                config.artifactDir);
    std::vector<std::unique_ptr<Replica>> replicas;
    for (size_t i = 0; i < config.replicas.size(); ++i)
        replicas.push_back(std::make_unique<Replica>(
            static_cast<int>(i), config.replicas[i], config.batcher,
            config.maxQueueDepthPerReplica, config.coldCompileUs,
            config.warmLoadUs, service));
    Router router(config.policy, config.affinitySpillDepth);

    const std::vector<FaultEvent> faults =
        generateFaults(config.faults,
                       static_cast<int>(config.replicas.size()),
                       horizonUs);
    for (const FaultEvent &fault : faults)
        SOUFFLE_REQUIRE(fault.replica
                            < static_cast<int>(config.replicas.size()),
                        "fault targets replica "
                            << fault.replica << " but the fleet has "
                            << config.replicas.size());
    size_t faultCursor = 0;
    /** (recoverAtUs, replica) for failed replicas. */
    std::set<std::pair<double, int>> recoveries;
    /** (warmAtUs, replica) for autoscaled replicas provisioning. */
    std::set<std::pair<double, int>> provisions;
    /** (dueUs, request id) retry timers. */
    std::set<std::pair<double, int>> retryQueue;

    std::vector<Pending> pending(trace.size());
    for (const FleetRequest &request : trace) {
        pending[static_cast<size_t>(request.id)].tenant =
            request.tenant;
        pending[static_cast<size_t>(request.id)].firstArrivalUs =
            request.arrivalUs;
    }
    std::vector<TenantAcc> tenantAcc(config.tenants.size());

    FleetReport report;
    report.policy = routerPolicyName(config.policy);
    report.seed = config.traffic.seed;
    report.initialReplicas = static_cast<int>(config.replicas.size());
    report.retryEnabled = config.retry.enabled;
    report.autoscalerEnabled = config.autoscaler.enabled;
    report.totalRequests = static_cast<int>(trace.size());

    size_t arrivalCursor = 0;
    double lastCompletionUs = 0.0;
    double nextScaleUs = config.autoscaler.enabled
                             ? config.autoscaler.evalIntervalUs
                             : kNever;

    auto liveCount = [&replicas] {
        int live = 0;
        for (const auto &replica : replicas)
            if (replica->isUp())
                ++live;
        return live;
    };
    auto activeCount = [&replicas] {
        int active = 0;
        for (const auto &replica : replicas)
            if (replica->state() != ReplicaState::kDown)
                ++active;
        return active;
    };

    /** A request lost its replica (or found none): retry with
     *  exponential backoff, or count it failed. */
    auto strand = [&](int id, double now_us) {
        Pending &request = pending[static_cast<size_t>(id)];
        if (config.retry.enabled
            && request.attempts < config.retry.maxAttempts) {
            const double backoff =
                config.retry.backoffBaseUs
                * std::pow(config.retry.backoffMultiplier,
                           request.attempts - 1);
            retryQueue.emplace(now_us + backoff, id);
        } else {
            request.dead = true;
            ++report.failedRequests;
            ++tenantAcc[static_cast<size_t>(request.tenant)].failed;
        }
    };

    auto routeAndAdmit = [&](int id, double now_us, bool is_retry) {
        Pending &request = pending[static_cast<size_t>(id)];
        const TenantSpec &tenant =
            config.tenants[static_cast<size_t>(request.tenant)];
        if (is_retry) {
            ++report.retriedRequests;
            ++tenantAcc[static_cast<size_t>(request.tenant)].retries;
        }
        ++request.attempts;
        const int target = router.pick(replicas, tenant.model);
        if (target < 0) {
            strand(id, now_us);
            return;
        }
        if (!replicas[static_cast<size_t>(target)]->admit(
                id, tenant.model, tenant.slo.priority, now_us)) {
            request.dead = true;
            ++report.shedRequests;
            ++tenantAcc[static_cast<size_t>(request.tenant)].shed;
        }
    };

    auto recordSpinUp = [&](int replica, double now_us) {
        SpinUpRecord record;
        record.replica = replica;
        record.atUs = now_us;
        record.fills =
            replicas[static_cast<size_t>(replica)]->lastSpinUpFills();
        record.candidateEvals =
            replicas[static_cast<size_t>(replica)]->lastSpinUpEvals();
        report.spinUps.push_back(record);
    };

    // ----- event loop -----------------------------------------------------
    double now = 0.0;
    while (true) {
        // 1) replica failures due now.
        while (faultCursor < faults.size()
               && faults[faultCursor].failAtUs <= now) {
            const FaultEvent &fault = faults[faultCursor++];
            Replica &victim =
                *replicas[static_cast<size_t>(fault.replica)];
            if (victim.state() == ReplicaState::kDown)
                continue; // already down; outage subsumed
            const std::vector<int> stranded = victim.fail(now);
            report.failureTimeline.push_back(
                makeEvent(now, "fail", fault.replica,
                          static_cast<int>(stranded.size())));
            for (int id : stranded)
                strand(id, now);
            recoveries.emplace(fault.recoverAtUs, fault.replica);
        }

        // 2) recoveries due: the node is back, warm it from the
        //    fleet cache.
        while (!recoveries.empty()
               && recoveries.begin()->first <= now) {
            const int index = recoveries.begin()->second;
            recoveries.erase(recoveries.begin());
            Replica &node = *replicas[static_cast<size_t>(index)];
            if (node.state() != ReplicaState::kDown)
                continue;
            node.beginSpinUp(now);
            report.failureTimeline.push_back(
                makeEvent(now, "recover", index, 0));
            recordSpinUp(index, now);
        }

        // 3) autoscaled replicas done provisioning: start warming.
        while (!provisions.empty()
               && provisions.begin()->first <= now) {
            const int index = provisions.begin()->second;
            provisions.erase(provisions.begin());
            replicas[static_cast<size_t>(index)]->beginSpinUp(now);
            recordSpinUp(index, now);
        }

        // 4) spin-up completions (possibly begun this instant).
        for (auto &replica : replicas) {
            if (replica->state() == ReplicaState::kStarting
                && replica->readyAtUs() <= now) {
                replica->completeSpinUp(now);
                auto &timeline =
                    replica->id() >= report.initialReplicas
                        ? report.autoscalerTimeline
                        : report.failureTimeline;
                timeline.push_back(makeEvent(now, "ready",
                                             replica->id(),
                                             liveCount()));
            }
        }

        // 5) autoscaler ticks due now.
        while (config.autoscaler.enabled && nextScaleUs <= now) {
            nextScaleUs += config.autoscaler.evalIntervalUs;
            const int live = liveCount();
            if (live == 0)
                continue;
            int depth = 0;
            for (const auto &replica : replicas)
                if (replica->isUp())
                    depth += replica->queueDepth();
            const double mean_depth =
                static_cast<double>(depth)
                / static_cast<double>(live);
            if (mean_depth > config.autoscaler.scaleUpDepth
                && activeCount() < config.autoscaler.maxReplicas) {
                const int id = static_cast<int>(replicas.size());
                replicas.push_back(std::make_unique<Replica>(
                    id, config.autoscaler.newReplica, config.batcher,
                    config.maxQueueDepthPerReplica,
                    config.coldCompileUs, config.warmLoadUs, service,
                    ReplicaState::kDown));
                provisions.emplace(
                    now + config.autoscaler.spinUpDelayUs, id);
                report.autoscalerTimeline.push_back(
                    makeEvent(now, "scale-up", id, live));
            } else if (mean_depth < config.autoscaler.scaleDownDepth
                       && live > config.autoscaler.minReplicas) {
                // Retire the newest idle replica.
                for (int i = static_cast<int>(replicas.size()) - 1;
                     i >= 0; --i) {
                    Replica &node =
                        *replicas[static_cast<size_t>(i)];
                    if (node.isUp() && node.idle(now)) {
                        node.shutDown(now);
                        report.autoscalerTimeline.push_back(
                            makeEvent(now, "scale-down", i,
                                      liveCount()));
                        break;
                    }
                }
            }
        }

        // 6) arrivals and retries due now, merged by (time, id).
        while (true) {
            const bool arrival_due =
                arrivalCursor < trace.size()
                && trace[arrivalCursor].arrivalUs <= now;
            const bool retry_due =
                !retryQueue.empty()
                && retryQueue.begin()->first <= now;
            if (!arrival_due && !retry_due)
                break;
            bool take_arrival = arrival_due;
            if (arrival_due && retry_due) {
                const FleetRequest &arrival = trace[arrivalCursor];
                const auto &retry = *retryQueue.begin();
                take_arrival =
                    arrival.arrivalUs < retry.first
                    || (arrival.arrivalUs == retry.first
                        && arrival.id < retry.second);
            }
            if (take_arrival) {
                const FleetRequest &arrival =
                    trace[arrivalCursor++];
                ++tenantAcc[static_cast<size_t>(arrival.tenant)]
                      .offered;
                routeAndAdmit(arrival.id, now, false);
            } else {
                const int id = retryQueue.begin()->second;
                retryQueue.erase(retryQueue.begin());
                routeAndAdmit(id, now, true);
            }
        }

        // 7) completions.
        for (auto &replica : replicas) {
            for (const Completion &completion :
                 replica->collectCompletions(now)) {
                Pending &request = pending[static_cast<size_t>(
                    completion.requestId)];
                request.done = true;
                TenantAcc &acc =
                    tenantAcc[static_cast<size_t>(request.tenant)];
                const double latency =
                    completion.doneUs - request.firstArrivalUs;
                ++report.completedRequests;
                ++acc.completed;
                acc.latencies.push_back(latency);
                if (latency
                    <= config.tenants[static_cast<size_t>(
                                          request.tenant)]
                           .slo.latencyTargetUs)
                    ++acc.attained;
                lastCompletionUs =
                    std::max(lastCompletionUs, completion.doneUs);
            }
        }

        // 8) dispatch ready batches onto free streams.
        const bool drain =
            arrivalCursor == trace.size() && retryQueue.empty();
        for (auto &replica : replicas)
            replica->dispatch(now, drain);

        // ----- advance to the next event ---------------------------------
        double next = kNever;
        if (arrivalCursor < trace.size())
            next = std::min(next, trace[arrivalCursor].arrivalUs);
        if (!retryQueue.empty())
            next = std::min(next, retryQueue.begin()->first);
        if (faultCursor < faults.size())
            next = std::min(next, faults[faultCursor].failAtUs);
        if (!recoveries.empty())
            next = std::min(next, recoveries.begin()->first);
        if (!provisions.empty())
            next = std::min(next, provisions.begin()->first);
        for (const auto &replica : replicas) {
            if (replica->state() == ReplicaState::kStarting)
                next = std::min(next, replica->readyAtUs());
            next = std::min(next, replica->nextEventUs(now));
        }
        // Autoscaler ticks never keep the loop alive on their own.
        if (config.autoscaler.enabled && next < kNever)
            next = std::min(next, nextScaleUs);
        if (!(next < kNever))
            break;
        SOUFFLE_REQUIRE(next > now,
                        "fleet sim failed to advance past "
                            << now << "us");
        now = next;
    }

    // ----- report ---------------------------------------------------------
    report.makespanUs = std::max(horizonUs, lastCompletionUs);
    for (auto &replica : replicas)
        replica->finalize(report.makespanUs);

    for (size_t t = 0; t < config.tenants.size(); ++t) {
        const TenantSpec &spec = config.tenants[t];
        const TenantAcc &acc = tenantAcc[t];
        TenantStats stats;
        stats.name = spec.name;
        stats.model = spec.model;
        stats.priority = spec.slo.priority;
        stats.sloTargetUs = spec.slo.latencyTargetUs;
        stats.offered = acc.offered;
        stats.completed = acc.completed;
        stats.shedRequests = acc.shed;
        stats.failedRequests = acc.failed;
        stats.retries = acc.retries;
        stats.sloAttained = acc.attained;
        stats.latency = summarizeLatencies(acc.latencies);
        report.tenants.push_back(std::move(stats));
    }

    for (const auto &replica : replicas) {
        ReplicaStats stats;
        stats.id = replica->id();
        stats.device = replica->spec().device;
        stats.numStreams = replica->spec().numStreams;
        stats.finalState = replicaStateName(replica->state());
        stats.upUs = replica->upUs();
        stats.busyUs = replica->busyUs();
        stats.batches = replica->batchesDispatched();
        stats.served = replica->requestsServed();
        stats.bucketFills = replica->bucketFills();
        stats.shedRequests = replica->shedCount();
        report.compileCount += stats.bucketFills;
        report.replicas.push_back(std::move(stats));
    }
    report.fleetCompiles = service.fleetCompiles();
    report.candidateEvals = service.candidateEvals();
    report.compileMsTotal = service.compileMsTotal();
    return report;
}

} // namespace souffle::cluster
