#include "cluster/traffic.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace souffle::cluster {

namespace {

/** splitmix64: well-mixed 64-bit stream from a counter (the same
 *  construction the serving workload generator uses). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Uniform double in (0, 1]; never 0 so log() is safe. */
double
uniform01(uint64_t seed, uint64_t index)
{
    const uint64_t bits = mix64(seed ^ mix64(index)) >> 11;
    return (static_cast<double>(bits) + 1.0) / 9007199254740993.0;
}

/** Domain separator for the burst-window coin flips: burst decisions
 *  must not correlate with the arrival-gap draws at the same index. */
constexpr uint64_t kBurstStream = 0x62757273740a0a0aULL;
/** Domain separator for the tenant-assignment draws. */
constexpr uint64_t kTenantStream = 0x74656e616e740a0aULL;

bool
inBurst(const TrafficSpec &spec, double t_us)
{
    if (spec.burstMultiplier <= 1.0 || spec.burstProbability <= 0.0
        || spec.burstWindowUs <= 0.0)
        return false;
    const uint64_t window =
        static_cast<uint64_t>(t_us / spec.burstWindowUs);
    const double offset =
        t_us - static_cast<double>(window) * spec.burstWindowUs;
    if (offset >= std::min(spec.burstDurationUs, spec.burstWindowUs))
        return false;
    return uniform01(spec.seed ^ kBurstStream, window)
           <= spec.burstProbability;
}

} // namespace

double
trafficRateAtUs(const TrafficSpec &spec, double t_us)
{
    double rate = spec.baseRatePerSec;
    if (spec.diurnalAmplitude > 0.0 && spec.diurnalPeriodUs > 0.0) {
        constexpr double kTwoPi = 6.283185307179586476925286766559;
        rate *= 1.0
                + spec.diurnalAmplitude
                      * std::sin(kTwoPi * t_us / spec.diurnalPeriodUs);
    }
    if (inBurst(spec, t_us))
        rate *= spec.burstMultiplier;
    return rate;
}

std::vector<FleetRequest>
generateTraffic(const TrafficSpec &spec,
                const std::vector<double> &tenant_weights)
{
    SOUFFLE_REQUIRE(spec.baseRatePerSec > 0.0,
                    "traffic base rate must be positive, got "
                        << spec.baseRatePerSec);
    SOUFFLE_REQUIRE(spec.durationUs > 0.0,
                    "traffic duration must be positive, got "
                        << spec.durationUs);
    SOUFFLE_REQUIRE(spec.diurnalAmplitude >= 0.0
                        && spec.diurnalAmplitude < 1.0,
                    "diurnal amplitude must be in [0, 1), got "
                        << spec.diurnalAmplitude);
    SOUFFLE_REQUIRE(spec.burstMultiplier >= 1.0,
                    "burst multiplier must be >= 1, got "
                        << spec.burstMultiplier);
    double weight_total = 0.0;
    for (double w : tenant_weights) {
        SOUFFLE_REQUIRE(w > 0.0, "tenant weight must be positive, got "
                                     << w);
        weight_total += w;
    }

    // Thinning: draw homogeneous arrivals at the peak rate, keep each
    // with probability rate(t)/peak. Two counter draws per candidate
    // (gap, acceptance) plus one tenant draw per kept request.
    const double peak_rate = spec.baseRatePerSec
                             * (1.0 + spec.diurnalAmplitude)
                             * spec.burstMultiplier;
    const double mean_gap_us = 1.0e6 / peak_rate;

    std::vector<FleetRequest> trace;
    double clock = 0.0;
    for (uint64_t i = 0;; ++i) {
        clock += -mean_gap_us * std::log(uniform01(spec.seed, 2 * i));
        if (clock > spec.durationUs)
            break;
        const double accept = uniform01(spec.seed, 2 * i + 1);
        if (accept * peak_rate > trafficRateAtUs(spec, clock))
            continue;
        FleetRequest request;
        request.id = static_cast<int>(trace.size());
        request.arrivalUs = clock;
        if (!tenant_weights.empty()) {
            const double pick =
                uniform01(spec.seed ^ kTenantStream,
                          static_cast<uint64_t>(request.id))
                * weight_total;
            double cumulative = 0.0;
            for (size_t t = 0; t < tenant_weights.size(); ++t) {
                cumulative += tenant_weights[t];
                if (pick <= cumulative) {
                    request.tenant = static_cast<int>(t);
                    break;
                }
            }
        }
        trace.push_back(request);
    }
    return trace;
}

std::string
traceToJson(const std::vector<FleetRequest> &trace)
{
    JsonWriter json;
    json.setDoublePrecision(17);
    json.beginObject()
        .newline()
        .field("kind", "souffle-fleet-trace")
        .newline()
        .field("requests", static_cast<int64_t>(trace.size()))
        .newline()
        .key("trace")
        .beginArray();
    for (const FleetRequest &request : trace) {
        json.newline()
            .beginObject()
            .field("id", request.id)
            .field("t_us", request.arrivalUs)
            .field("tenant", request.tenant)
            .endObject();
    }
    json.endArray().newline().endObject();
    return json.str() + "\n";
}

std::vector<FleetRequest>
traceFromJson(const std::string &text)
{
    const JsonValue doc = parseJson(text);
    SOUFFLE_REQUIRE(doc.isObject()
                        && doc.at("kind").asString()
                               == "souffle-fleet-trace",
                    "not a souffle-fleet-trace document");
    std::vector<FleetRequest> trace;
    for (const JsonValue &item : doc.at("trace").items()) {
        FleetRequest request;
        request.arrivalUs = item.at("t_us").asNumber();
        request.tenant =
            static_cast<int>(item.at("tenant").asInt());
        SOUFFLE_REQUIRE(request.arrivalUs >= 0.0,
                        "trace arrival must be >= 0, got "
                            << request.arrivalUs);
        SOUFFLE_REQUIRE(request.tenant >= 0,
                        "trace tenant must be >= 0, got "
                            << request.tenant);
        trace.push_back(request);
    }
    std::stable_sort(trace.begin(), trace.end(),
                     [](const FleetRequest &a, const FleetRequest &b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i].id = static_cast<int>(i);
    return trace;
}

void
saveTrace(const std::vector<FleetRequest> &trace,
          const std::string &path)
{
    std::ofstream file(path);
    SOUFFLE_REQUIRE(file.good(),
                    "cannot open trace file '" << path << "'");
    file << traceToJson(trace);
    SOUFFLE_REQUIRE(file.good(),
                    "failed writing trace file '" << path << "'");
}

std::vector<FleetRequest>
loadTrace(const std::string &path)
{
    std::ifstream file(path);
    SOUFFLE_REQUIRE(file.good(),
                    "cannot read trace file '" << path << "'");
    std::ostringstream text;
    text << file.rdbuf();
    return traceFromJson(text.str());
}

} // namespace souffle::cluster
