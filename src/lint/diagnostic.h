#pragma once

/**
 * @file
 * Diagnostics for the static-analysis (lint) subsystem.
 *
 * A `Diagnostic` is one finding of one lint rule: a stable rule id, a
 * severity, a location anchored to the IR artifact the finding is
 * about (TE id, kernel, stage, instruction), a human-readable message
 * and an optional fix hint. A `LintReport` is an ordered collection of
 * diagnostics with severity counters and text/JSON renderers, shared
 * by the `Linter` driver, the `LintPass`, the inter-pass `IrVerifier`
 * (which reports *all* structural violations through the same
 * machinery before throwing) and the `souffle_cli lint` subcommand.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace souffle {

/** Severity of one lint finding. */
enum class Severity : uint8_t {
    kNote,    ///< informational (e.g. an out-of-bounds read that is
              ///< provably masked by a predicate)
    kWarning, ///< suspicious but not semantics-breaking (dead code,
              ///< store-to-nowhere)
    kError,   ///< semantics- or executability-breaking (race, OOB
              ///< read, resource-cap violation)
};

std::string severityName(Severity severity);

/**
 * Location of a finding, anchored to whatever IR granularity the rule
 * operates on. Unset fields stay at their defaults and are omitted
 * from rendered output.
 */
struct LintLocation
{
    /** TE id in the working program, or -1. */
    int teId = -1;
    /** Kernel name in the compiled module (empty if not anchored). */
    std::string kernel;
    /** Stage index inside the kernel, or -1. */
    int stage = -1;
    /** Instruction index inside the stage, or -1. */
    int instr = -1;

    bool empty() const
    {
        return teId < 0 && kernel.empty() && stage < 0 && instr < 0;
    }

    /** Compact rendering, e.g. "kernel 'sub_0' stage 2 te 17". */
    std::string toString() const;
};

/** One finding of one lint rule. */
struct Diagnostic
{
    /** Stable kebab-case rule id, e.g. "grid-sync-race". */
    std::string rule;
    Severity severity = Severity::kWarning;
    LintLocation location;
    std::string message;
    /** Optional suggestion for fixing the finding. */
    std::string fixHint;

    /** One-line rendering: "error[grid-sync-race] <loc>: <msg>". */
    std::string toString() const;
};

/** Ordered collection of diagnostics with renderers. */
class LintReport
{
  public:
    void add(Diagnostic diagnostic);

    /** Convenience: construct and add in one call. */
    void add(const std::string &rule, Severity severity,
             LintLocation location, const std::string &message,
             const std::string &fix_hint = "");

    const std::vector<Diagnostic> &diagnostics() const { return diags; }

    bool empty() const { return diags.empty(); }
    size_t size() const { return diags.size(); }

    int count(Severity severity) const;
    int errors() const { return count(Severity::kError); }
    int warnings() const { return count(Severity::kWarning); }
    int notes() const { return count(Severity::kNote); }

    /** True if any diagnostic is at least as severe as @p threshold. */
    bool anyAtOrAbove(Severity threshold) const;

    /** Append every diagnostic of @p other. */
    void merge(const LintReport &other);

    /**
     * Human-readable multi-line report: one line per diagnostic plus
     * a summary line ("3 errors, 1 warning, 0 notes").
     */
    std::string renderText() const;

    /**
     * Machine-readable JSON document:
     * {"diagnostics": [...], "errors": N, "warnings": N, "notes": N}.
     */
    std::string renderJson() const;

  private:
    std::vector<Diagnostic> diags;
};

} // namespace souffle
