#pragma once

/**
 * @file
 * souffle-lint: the static-analysis framework over TE programs and
 * kernel plans (companion to the inter-pass IrVerifier).
 *
 * The `IrVerifier` proves coarse *structural* invariants (ids intact,
 * plans bijective) and rejects broken IR outright. The lint rules
 * prove the *semantic* properties the paper's transformations promise
 * to preserve (Sec. 5-6): every cross-stage dependence inside a merged
 * kernel is covered by a grid.sync(), every propagated read map stays
 * inside the producing tensor's shape, every stage fits the device
 * resource envelope, no dead TEs or stores-to-nowhere survive, and
 * the abstract instruction streams are self-consistent.
 *
 * A `LintRule` inspects a `LintInput` (whatever compile artifacts
 * exist: TE program + GlobalAnalysis always, schedules and compiled
 * module when available) and emits `Diagnostic`s. The `Linter` driver
 * runs a rule set -- by default every registered rule -- and returns a
 * `LintReport`. `LintPass` adapts the driver to the PassManager so a
 * `--strict` compile fails on error-severity findings, and
 * `souffle_cli lint` exposes the same machinery on the command line.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/pass.h"
#include "lint/diagnostic.h"

namespace souffle {

struct MemoryPlan;

/** Read-only view of the artifacts a lint run inspects. */
struct LintInput
{
    const TeProgram &program;
    const GlobalAnalysis &analysis;
    DeviceSpec device;
    /** Per-TE schedules, or nullptr before scheduling. */
    const std::vector<Schedule> *schedules = nullptr;
    /** Compiled module, or nullptr before kernel construction. */
    const CompiledModule *module = nullptr;
    /**
     * Workspace plan to verify, or nullptr to let the plan-overlap
     * rule plan the program itself (mutation tests inject doctored
     * plans through this pointer).
     */
    const MemoryPlan *plan = nullptr;
    /**
     * Codegen backend of the compile under inspection (a
     * CodeGenBackendRegistry name). GPU-only rules (grid-sync-race,
     * resource-caps) auto-skip with a note-level diagnostic when the
     * backend does not target a GPU.
     */
    std::string backend = "cuda";
};

/** One lint rule: a named semantic analysis. */
class LintRule
{
  public:
    virtual ~LintRule() = default;

    /** Stable kebab-case rule id (doubles as the diagnostic rule). */
    virtual std::string id() const = 0;

    /** One-line description of what the rule proves. */
    virtual std::string description() const = 0;

    /** Inspect @p input and append findings to @p report. */
    virtual void run(const LintInput &input, LintReport &report) const = 0;
};

/** Registry of lint-rule factories, keyed by rule id. */
class LintRuleRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<LintRule>()>;

    /** The process-wide registry, pre-seeded with the builtin rules. */
    static LintRuleRegistry &global();

    /** Register a factory; replaces an existing id. */
    void add(const std::string &id, Factory factory);

    /** Ids of all registered rules, sorted. */
    std::vector<std::string> ruleIds() const;

    /** Instantiate one rule; throws FatalError on unknown id. */
    std::unique_ptr<LintRule> create(const std::string &id) const;

    /** Instantiate every registered rule, in sorted-id order. */
    std::vector<std::unique_ptr<LintRule>> createAll() const;

  private:
    std::vector<std::pair<std::string, Factory>> factories;
};

/** Ids of the builtin rule catalogue (sorted). */
std::vector<std::string> builtinLintRuleIds();

/** Driver: runs a rule set over the compile artifacts. */
class Linter
{
  public:
    /** Lint with every rule registered in the global registry. */
    Linter();

    /** Lint with the given rule ids only (throws on unknown ids). */
    explicit Linter(const std::vector<std::string> &rule_ids);

    /** Run every selected rule over @p input. */
    LintReport run(const LintInput &input) const;

    /**
     * Run over a CompileContext: program + analysis always, schedules
     * and module when the pipeline has produced them.
     */
    LintReport run(CompileContext &ctx) const;

    /** The selected rules. */
    const std::vector<std::unique_ptr<LintRule>> &rules() const
    {
        return selected;
    }

  private:
    std::vector<std::unique_ptr<LintRule>> selected;
};

/**
 * PassManager adapter: runs the full rule catalogue over the context
 * and throws FatalError when any error-severity finding exists
 * (`SouffleOptions::strictLint` appends it to every pipeline).
 * Warning/note findings are reported through SOUFFLE_WARN and pass
 * counters ("lint-errors", "lint-warnings", "reach-queries").
 */
class LintPass : public Pass
{
  public:
    std::string name() const override { return "lint"; }
    void run(CompileContext &ctx) override;
};

} // namespace souffle
