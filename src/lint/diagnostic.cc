#include "lint/diagnostic.h"

#include <sstream>

#include "common/json.h"

namespace souffle {

std::string
severityName(Severity severity)
{
    switch (severity) {
      case Severity::kNote:
        return "note";
      case Severity::kWarning:
        return "warning";
      case Severity::kError:
        return "error";
    }
    return "unknown";
}

std::string
LintLocation::toString() const
{
    std::ostringstream os;
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << " ";
        first = false;
    };
    if (!kernel.empty()) {
        sep();
        os << "kernel '" << kernel << "'";
    }
    if (stage >= 0) {
        sep();
        os << "stage " << stage;
    }
    if (instr >= 0) {
        sep();
        os << "instr " << instr;
    }
    if (teId >= 0) {
        sep();
        os << "te " << teId;
    }
    return os.str();
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << severityName(severity) << "[" << rule << "]";
    if (!location.empty())
        os << " " << location.toString();
    os << ": " << message;
    if (!fixHint.empty())
        os << "  (fix: " << fixHint << ")";
    return os.str();
}

void
LintReport::add(Diagnostic diagnostic)
{
    diags.push_back(std::move(diagnostic));
}

void
LintReport::add(const std::string &rule, Severity severity,
                LintLocation location, const std::string &message,
                const std::string &fix_hint)
{
    Diagnostic diag;
    diag.rule = rule;
    diag.severity = severity;
    diag.location = std::move(location);
    diag.message = message;
    diag.fixHint = fix_hint;
    diags.push_back(std::move(diag));
}

int
LintReport::count(Severity severity) const
{
    int n = 0;
    for (const Diagnostic &diag : diags)
        if (diag.severity == severity)
            ++n;
    return n;
}

bool
LintReport::anyAtOrAbove(Severity threshold) const
{
    for (const Diagnostic &diag : diags) {
        if (static_cast<int>(diag.severity)
            >= static_cast<int>(threshold))
            return true;
    }
    return false;
}

void
LintReport::merge(const LintReport &other)
{
    diags.insert(diags.end(), other.diags.begin(), other.diags.end());
}

std::string
LintReport::renderText() const
{
    std::ostringstream os;
    for (const Diagnostic &diag : diags)
        os << diag.toString() << "\n";
    os << errors() << " error(s), " << warnings() << " warning(s), "
       << notes() << " note(s)\n";
    return os.str();
}

std::string
LintReport::renderJson() const
{
    JsonWriter json;
    json.beginObject().newline().key("diagnostics").beginArray();
    for (const Diagnostic &diag : diags) {
        json.newline()
            .beginObject()
            .field("rule", diag.rule)
            .field("severity", severityName(diag.severity));
        if (diag.location.teId >= 0)
            json.field("te", diag.location.teId);
        if (!diag.location.kernel.empty())
            json.field("kernel", diag.location.kernel);
        if (diag.location.stage >= 0)
            json.field("stage", diag.location.stage);
        if (diag.location.instr >= 0)
            json.field("instr", diag.location.instr);
        json.field("message", diag.message);
        if (!diag.fixHint.empty())
            json.field("fix", diag.fixHint);
        json.endObject();
    }
    if (!diags.empty())
        json.newline();
    json.endArray()
        .newline()
        .field("errors", errors())
        .newline()
        .field("warnings", warnings())
        .newline()
        .field("notes", notes())
        .newline()
        .endObject();
    return json.str() + "\n";
}

} // namespace souffle
