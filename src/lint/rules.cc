/**
 * @file
 * The builtin lint-rule catalogue (see lint.h for the framework).
 *
 *   grid-sync-race  cross-stage RAW/WAR dependences inside a merged
 *                   kernel must be separated by grid.sync(); a
 *                   one-relies-on-many producer fused into its
 *                   consumer's stage needs a block barrier (Sec. 6.3/6.4)
 *   affine-bounds   every read map's interval over the iteration box
 *                   stays inside the producing tensor's shape unless
 *                   the read is masked by an affine predicate (Sec. 6.2)
 *   resource-caps   stages fit the per-block device limits; grid-sync
 *                   kernels fit one cooperative wave (Sec. 5.4)
 *   dead-te         every TE (transitively) feeds a model output;
 *                   inputs/params are consumed
 *   instr-stream    instruction streams are self-consistent: no
 *                   overlapped loads in a kernel's first stage or of
 *                   in-kernel-produced tensors, no stores to tensors
 *                   nothing consumes, no grid.sync() in library kernels
 *   plan-overlap    the memory plan is sound: no two simultaneously-
 *                   live intermediates share workspace bytes, every
 *                   planned interval contains the observed live
 *                   interval (analysis/verify_plan.h)
 *   unsynced-dep    instruction-granular happens-before: every
 *                   def/use edge of the kernel dataflow is ordered by
 *                   a fence of sufficient scope (finer than
 *                   grid-sync-race's stage granularity)
 *   redundant-sync  fences the dataflow proves removable (subsumed by
 *                   an adjacent stronger fence or a kernel boundary,
 *                   or covering no dependence edge)
 *   task-graph-dep  V5 megakernel modules: the task graph is well
 *                   formed and acyclic, and every cross-stage
 *                   dependence (dataflow RAW/WAR plus per-tensor
 *                   writer chains) is covered by task-graph
 *                   reachability; intra-task edges ride program order
 *
 * On megakernel modules (CompiledModule::megakernel) the grid-sync
 * rules accept task-graph reachability in place of grid.sync(): the
 * persistent kernel deleted its whole-grid fences and re-expressed
 * their ordering as scheduler-enforced task edges.
 */

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analysis/dataflow.h"
#include "analysis/verify_plan.h"
#include "codegen/backend.h"
#include "common/string_util.h"
#include "lint/lint.h"
#include "runtime/memory_plan.h"

namespace souffle {
namespace {

/**
 * GPU-only rules prove launch-grid properties (barrier coverage,
 * occupancy caps) that have no counterpart when the backend lowers
 * stages to sequential CPU loops. When the compile targets such a
 * backend, record a note so the skip is visible in the report and
 * return true.
 */
bool
skipForNonGpuBackend(const LintInput &input, const std::string &rule_id,
                     LintReport &report)
{
    const CodeGenBackend *backend =
        CodeGenBackendRegistry::global().find(input.backend);
    if (backend == nullptr || backend->targetsGpu())
        return false;
    report.add(rule_id, Severity::kNote, LintLocation{},
               "rule is GPU-only; skipped for backend '"
                   + backend->name()
                   + "' (stages execute sequentially on the host)",
               "");
    return true;
}

// ---------------------------------------------------------------------
// grid-sync-race
// ---------------------------------------------------------------------

class GridSyncRaceRule : public LintRule
{
  public:
    std::string id() const override { return "grid-sync-race"; }

    std::string
    description() const override
    {
        return "cross-stage dependences in merged kernels are covered "
               "by grid.sync(); fused one-relies-on-many producers by "
               "a block barrier";
    }

    void
    run(const LintInput &input, LintReport &report) const override
    {
        if (input.module == nullptr)
            return;
        if (skipForNonGpuBackend(input, id(), report))
            return;
        const TeProgram &program = input.program;
        // A megakernel deleted its grid syncs; the scheduler enforces
        // cross-stage ordering via task edges instead.
        std::unique_ptr<TaskGraphReachability> reach;
        if (input.module->megakernel())
            reach = std::make_unique<TaskGraphReachability>(
                input.module->taskGraph);
        for (const Kernel &kernel : input.module->kernels) {
            checkCrossStage(program, input.analysis, kernel,
                            reach.get(), report);
            for (size_t s = 0; s < kernel.stages.size(); ++s)
                checkIntraStage(program, kernel,
                                static_cast<int>(s), report);
        }
    }

  private:
    /** Index of the compute instruction producing @p tensor, or -1. */
    static int
    computeIndexOf(const KernelStage &stage, TensorId tensor)
    {
        for (size_t i = 0; i < stage.instrs.size(); ++i) {
            const Instr &instr = stage.instrs[i];
            if (instr.kind == InstrKind::kCompute
                && instr.tensor == tensor)
                return static_cast<int>(i);
        }
        return -1;
    }

    void
    checkCrossStage(const TeProgram &program,
                    const GlobalAnalysis &analysis, const Kernel &kernel,
                    const TaskGraphReachability *reach,
                    LintReport &report) const
    {
        if (kernel.stages.size() < 2 || kernel.numBlocks() <= 1)
            return; // single block: block barriers suffice

        // Stage index of every TE in this kernel.
        std::unordered_map<int, int> stage_of;
        for (size_t s = 0; s < kernel.stages.size(); ++s) {
            for (int te_id : kernel.stages[s].teIds)
                stage_of.emplace(te_id, static_cast<int>(s));
        }
        // hasSync[s]: stage s contains at least one grid.sync().
        std::vector<bool> has_sync(kernel.stages.size(), false);
        for (size_t s = 0; s < kernel.stages.size(); ++s) {
            for (const Instr &instr : kernel.stages[s].instrs) {
                if (instr.kind == InstrKind::kGridSync) {
                    has_sync[s] = true;
                    break;
                }
            }
        }
        auto synced_between = [&](int def_stage, int use_stage) {
            if (reach != nullptr
                && reach->reaches(def_stage, use_stage))
                return true;
            for (int s = def_stage + 1; s <= use_stage; ++s)
                if (has_sync[s])
                    return true;
            return false;
        };

        // RAW: a TE reading a tensor defined in an earlier stage, and
        // WAR: a TE writing a tensor read by an earlier stage (cannot
        // arise from the SSA builder, but hand-edited or future IR
        // can), must be separated by a grid.sync().
        for (size_t s = 0; s < kernel.stages.size(); ++s) {
            for (int te_id : kernel.stages[s].teIds) {
                const TensorExpr &te = program.te(te_id);
                for (TensorId in : te.inputs) {
                    const int producer = program.tensor(in).producer;
                    auto it = producer >= 0 ? stage_of.find(producer)
                                            : stage_of.end();
                    if (it == stage_of.end()
                        || it->second >= static_cast<int>(s))
                        continue;
                    // Dependence confirmed by the global analysis
                    // (def-use edge implies reachability).
                    if (!analysis.reachable(producer, te_id))
                        continue;
                    if (synced_between(it->second,
                                       static_cast<int>(s)))
                        continue;
                    std::ostringstream msg;
                    msg << "RAW race: TE " << te_id << " ('"
                        << te.name << "') in stage " << s
                        << " reads tensor '"
                        << program.tensor(in).name
                        << "' produced by TE " << producer
                        << " in stage " << it->second
                        << " with no grid.sync() between them and "
                        << kernel.numBlocks() << " blocks in flight";
                    LintLocation loc;
                    loc.kernel = kernel.name;
                    loc.stage = static_cast<int>(s);
                    loc.teId = te_id;
                    report.add(id(), Severity::kError, loc, msg.str(),
                               "insert a kGridSync at the head of the "
                               "consuming stage");
                }
                // WAR: this TE's output was read by an earlier stage.
                for (size_t earlier = 0; earlier < s; ++earlier) {
                    bool reads = false;
                    for (int other : kernel.stages[earlier].teIds) {
                        const TensorExpr &o = program.te(other);
                        if (std::find(o.inputs.begin(),
                                      o.inputs.end(), te.output)
                            != o.inputs.end()) {
                            reads = true;
                            break;
                        }
                    }
                    if (!reads
                        || synced_between(static_cast<int>(earlier),
                                          static_cast<int>(s)))
                        continue;
                    std::ostringstream msg;
                    msg << "WAR race: TE " << te_id << " in stage "
                        << s << " overwrites tensor '"
                        << program.tensor(te.output).name
                        << "' read by stage " << earlier
                        << " with no grid.sync() between them";
                    LintLocation loc;
                    loc.kernel = kernel.name;
                    loc.stage = static_cast<int>(s);
                    loc.teId = te_id;
                    report.add(id(), Severity::kError, loc, msg.str(),
                               "insert a kGridSync at the head of the "
                               "writing stage");
                }
            }
        }
    }

    void
    checkIntraStage(const TeProgram &program, const Kernel &kernel,
                    int stage_index, LintReport &report) const
    {
        const KernelStage &stage = kernel.stages[stage_index];
        std::unordered_set<int> in_stage(stage.teIds.begin(),
                                         stage.teIds.end());
        for (int te_id : stage.teIds) {
            const TensorExpr &te = program.te(te_id);
            for (TensorId in : te.inputs) {
                const int producer = program.tensor(in).producer;
                if (producer < 0 || !in_stage.count(producer)
                    || !program.te(producer).hasReduce())
                    continue;
                const int def = computeIndexOf(stage, in);
                const int use = computeIndexOf(stage, te.output);
                if (def < 0 || use < 0)
                    continue; // stream lacks the computes entirely;
                              // the instr-stream rule owns that
                bool barriered = false;
                for (int i = def + 1; i < use; ++i) {
                    if (stage.instrs[i].kind == InstrKind::kBarrier) {
                        barriered = true;
                        break;
                    }
                }
                if (barriered)
                    continue;
                std::ostringstream msg;
                msg << "one-relies-on-many producer TE " << producer
                    << " ('" << program.te(producer).name
                    << "') is fused into the same stage as consumer "
                    << "TE " << te_id
                    << " with no block barrier between their computes";
                LintLocation loc;
                loc.kernel = kernel.name;
                loc.stage = stage_index;
                loc.teId = te_id;
                report.add(id(), Severity::kError, loc, msg.str(),
                           "emit a kBarrier between the producer's "
                           "reduction and the consumer's compute");
            }
        }
    }
};

// ---------------------------------------------------------------------
// affine-bounds
// ---------------------------------------------------------------------

class AffineBoundsRule : public LintRule
{
  public:
    std::string id() const override { return "affine-bounds"; }

    std::string
    description() const override
    {
        return "read-map intervals over the iteration box stay inside "
               "the producing tensor's shape unless predicate-masked";
    }

    void
    run(const LintInput &input, LintReport &report) const override
    {
        for (const TensorExpr &te : input.program.tes())
            checkTe(input.program, te, report);
    }

  private:
    /** True if any condition actually constrains the index vector. */
    static bool
    masksIndex(const Predicate &pred)
    {
        for (const AffineCond &cond : pred)
            for (int64_t coef : cond.coefs)
                if (coef != 0)
                    return true;
        return false;
    }

    void
    checkTe(const TeProgram &program, const TensorExpr &te,
            LintReport &report) const
    {
        const std::vector<int64_t> extents = te.iterExtents();
        walk(program, te, te.body, extents, /*guarded=*/false, report);
    }

    void
    walk(const TeProgram &program, const TensorExpr &te,
         const ExprPtr &expr, const std::vector<int64_t> &extents,
         bool guarded, LintReport &report) const
    {
        switch (expr->kind()) {
          case ExprKind::kConst:
            return;
          case ExprKind::kRead:
            checkRead(program, te, expr, extents, guarded, report);
            return;
          case ExprKind::kUnary:
            walk(program, te, expr->lhs(), extents, guarded, report);
            return;
          case ExprKind::kBinary:
            walk(program, te, expr->lhs(), extents, guarded, report);
            walk(program, te, expr->rhs(), extents, guarded, report);
            return;
          case ExprKind::kSelect: {
            // Both branches execute under a (possibly negated) index
            // predicate: reads below are masked for the indices where
            // the other branch is taken.
            const bool masked =
                guarded || masksIndex(expr->predicate());
            walk(program, te, expr->lhs(), extents, masked, report);
            walk(program, te, expr->rhs(), extents, masked, report);
            return;
          }
        }
    }

    void
    checkRead(const TeProgram &program, const TensorExpr &te,
              const ExprPtr &read, const std::vector<int64_t> &extents,
              bool guarded, LintReport &report) const
    {
        const AffineMap &map = read->readMap();
        const int slot = read->readSlot();
        if (slot < 0 || slot >= static_cast<int>(te.inputs.size()))
            return; // undeclared slot: the IrVerifier owns that
        const TensorDecl &decl = program.tensor(te.inputs[slot]);

        auto emit = [&](int row, int64_t lo, int64_t hi,
                        int64_t bound, const char *kind) {
            std::ostringstream msg;
            msg << kind << " read of tensor '" << decl.name
                << "' row " << row << " spans [" << lo << ", " << hi
                << "] over the iteration box, outside [0, " << bound
                << ")";
            if (guarded)
                msg << " (masked by an affine predicate)";
            LintLocation loc;
            loc.teId = te.id;
            report.add(id(),
                       guarded ? Severity::kNote : Severity::kError,
                       loc, msg.str(),
                       guarded ? ""
                               : "guard the read with a predicate or "
                                 "fix the map's offset/coefficients");
        };

        if (read->isFlatRead()) {
            const auto range = map.rowValueRange(0, extents);
            const int64_t bound = decl.numElements();
            if (range.min < 0 || range.max >= bound)
                emit(0, range.min, range.max, bound, "flat");
            return;
        }
        if (map.outDims() != decl.rank()) {
            LintLocation loc;
            loc.teId = te.id;
            std::ostringstream msg;
            msg << "read map of tensor '" << decl.name << "' yields "
                << map.outDims() << " indices for a rank-"
                << decl.rank() << " tensor";
            report.add(id(), Severity::kError, loc, msg.str(),
                       "make the read map's out-rank match the "
                       "tensor rank");
            return;
        }
        for (int row = 0; row < map.outDims(); ++row) {
            const auto range = map.rowValueRange(row, extents);
            const int64_t bound = decl.shape[row];
            if (range.min < 0 || range.max >= bound)
                emit(row, range.min, range.max, bound, "affine");
        }
    }
};

// ---------------------------------------------------------------------
// resource-caps
// ---------------------------------------------------------------------

class ResourceCapsRule : public LintRule
{
  public:
    std::string id() const override { return "resource-caps"; }

    std::string
    description() const override
    {
        return "stages fit per-block device limits; grid-sync kernels "
               "fit one cooperative wave";
    }

    void
    run(const LintInput &input, LintReport &report) const override
    {
        if (skipForNonGpuBackend(input, id(), report))
            return;
        if (input.module != nullptr) {
            for (const Kernel &kernel : input.module->kernels)
                checkKernel(kernel, input.device, report);
        } else if (input.schedules != nullptr) {
            for (const Schedule &sched : *input.schedules)
                checkSchedule(sched, input.device, report);
        }
    }

  private:
    void
    checkSchedule(const Schedule &sched, const DeviceSpec &device,
                  LintReport &report) const
    {
        LintLocation loc;
        loc.teId = sched.teId;
        if (sched.sharedMemBytes > device.sharedMemPerBlockLimit) {
            report.add(id(), Severity::kError, loc,
                       "schedule requests "
                           + bytesToString(static_cast<double>(
                               sched.sharedMemBytes))
                           + " shared memory, per-block limit is "
                           + bytesToString(static_cast<double>(
                               device.sharedMemPerBlockLimit)),
                       "shrink the tile or spill to global memory");
        }
        if (sched.threadsPerBlock > device.maxThreadsPerBlock) {
            report.add(id(), Severity::kError, loc,
                       "schedule launches "
                           + std::to_string(sched.threadsPerBlock)
                           + " threads per block, device cap is "
                           + std::to_string(device.maxThreadsPerBlock),
                       "");
        }
        if (sched.regsPerBlock() > device.regsPerSm) {
            report.add(id(), Severity::kError, loc,
                       "schedule needs "
                           + std::to_string(sched.regsPerBlock())
                           + " registers per block, SM has "
                           + std::to_string(device.regsPerSm),
                       "");
        }
    }

    void
    checkKernel(const Kernel &kernel, const DeviceSpec &device,
                LintReport &report) const
    {
        for (size_t s = 0; s < kernel.stages.size(); ++s) {
            const KernelStage &stage = kernel.stages[s];
            LintLocation loc;
            loc.kernel = kernel.name;
            loc.stage = static_cast<int>(s);
            if (stage.sharedMemBytes > device.sharedMemPerBlockLimit) {
                report.add(
                    id(), Severity::kError, loc,
                    "stage uses "
                        + bytesToString(static_cast<double>(
                            stage.sharedMemBytes))
                        + " shared memory, per-block limit is "
                        + bytesToString(static_cast<double>(
                            device.sharedMemPerBlockLimit)),
                    "re-tile the stage or split the fused TEs");
            }
            if (stage.threadsPerBlock > device.maxThreadsPerBlock) {
                report.add(
                    id(), Severity::kError, loc,
                    "stage launches "
                        + std::to_string(stage.threadsPerBlock)
                        + " threads per block, device cap is "
                        + std::to_string(device.maxThreadsPerBlock),
                    "");
            }
            if (stage.regsPerBlock > device.regsPerSm) {
                report.add(id(), Severity::kError, loc,
                           "stage needs "
                               + std::to_string(stage.regsPerBlock)
                               + " registers per block, SM has "
                               + std::to_string(device.regsPerSm),
                           "");
            }
            if (device.blocksPerSm(stage.sharedMemBytes,
                                   stage.regsPerBlock,
                                   stage.threadsPerBlock)
                == 0) {
                report.add(id(), Severity::kError, loc,
                           "stage resource usage leaves zero resident "
                           "blocks per SM; the kernel cannot launch",
                           "shrink shared memory, registers, or the "
                           "block size");
            }
        }
        // A multi-stage kernel synchronizes with grid.sync(), which
        // requires every block resident in a single cooperative wave.
        if (kernel.stages.size() >= 2 && kernel.gridSyncCount() > 0) {
            const int64_t wave = device.maxBlocksPerWave(
                kernel.sharedMemBytes(), kernel.regsPerBlock(),
                kernel.threadsPerBlock());
            if (kernel.numBlocks() > wave) {
                LintLocation loc;
                loc.kernel = kernel.name;
                std::ostringstream msg;
                msg << "grid-sync kernel launches "
                    << kernel.numBlocks() << " blocks but only "
                    << wave
                    << " fit one cooperative wave; grid.sync() would "
                       "deadlock";
                report.add(id(), Severity::kError, loc, msg.str(),
                           "split the subprogram or use grid-stride "
                           "schedules");
            }
        }
    }
};

// ---------------------------------------------------------------------
// dead-te
// ---------------------------------------------------------------------

class DeadTeRule : public LintRule
{
  public:
    std::string id() const override { return "dead-te"; }

    std::string
    description() const override
    {
        return "every TE transitively feeds a model output; every "
               "input/param is consumed";
    }

    void
    run(const LintInput &input, LintReport &report) const override
    {
        const TeProgram &program = input.program;
        const GlobalAnalysis &analysis = input.analysis;

        // Backward liveness from the model outputs.
        std::vector<bool> live(program.numTes(), false);
        std::deque<int> queue;
        for (TensorId out : program.outputTensors()) {
            const int producer = program.tensor(out).producer;
            if (producer >= 0 && !live[producer]) {
                live[producer] = true;
                queue.push_back(producer);
            }
        }
        while (!queue.empty()) {
            const int te_id = queue.front();
            queue.pop_front();
            for (TensorId in : program.te(te_id).inputs) {
                const int producer = program.tensor(in).producer;
                if (producer >= 0 && !live[producer]) {
                    live[producer] = true;
                    queue.push_back(producer);
                }
            }
        }

        for (const TensorExpr &te : program.tes()) {
            if (live[te.id])
                continue;
            LintLocation loc;
            loc.teId = te.id;
            const bool unconsumed =
                analysis.consumers(te.output).empty();
            std::ostringstream msg;
            msg << "TE '" << te.name << "' does not reach any model "
                << "output (tensor '"
                << program.tensor(te.output).name << "' is "
                << (unconsumed ? "never consumed"
                               : "consumed only by dead TEs")
                << ")";
            report.add(id(), Severity::kWarning, loc, msg.str(),
                       "run TeProgram::removeDeadCode() before "
                       "scheduling");
        }

        for (const TensorDecl &decl : program.tensors()) {
            if (decl.role != TensorRole::kInput
                && decl.role != TensorRole::kParam)
                continue;
            if (!analysis.consumers(decl.id).empty())
                continue;
            LintLocation loc;
            report.add(id(), Severity::kNote, loc,
                       std::string(decl.role == TensorRole::kInput
                                       ? "input"
                                       : "param")
                           + " tensor '" + decl.name
                           + "' is never consumed",
                       "");
        }
    }
};

// ---------------------------------------------------------------------
// instr-stream
// ---------------------------------------------------------------------

class InstrStreamRule : public LintRule
{
  public:
    std::string id() const override { return "instr-stream"; }

    std::string
    description() const override
    {
        return "kernel instruction streams are self-consistent "
               "(overlap, store, and library-kernel invariants)";
    }

    void
    run(const LintInput &input, LintReport &report) const override
    {
        if (input.module == nullptr)
            return;
        const TeProgram &program = input.program;
        const GlobalAnalysis &analysis = input.analysis;
        for (const Kernel &kernel : input.module->kernels) {
            std::unordered_set<int> kernel_tes;
            for (const KernelStage &stage : kernel.stages)
                kernel_tes.insert(stage.teIds.begin(),
                                  stage.teIds.end());
            for (size_t s = 0; s < kernel.stages.size(); ++s) {
                const KernelStage &stage = kernel.stages[s];
                for (size_t i = 0; i < stage.instrs.size(); ++i) {
                    checkInstr(program, analysis, kernel, kernel_tes,
                               static_cast<int>(s),
                               static_cast<int>(i), stage.instrs[i],
                               report);
                }
            }
        }
    }

  private:
    void
    checkInstr(const TeProgram &program, const GlobalAnalysis &analysis,
               const Kernel &kernel,
               const std::unordered_set<int> &kernel_tes, int stage,
               int index, const Instr &instr, LintReport &report) const
    {
        LintLocation loc;
        loc.kernel = kernel.name;
        loc.stage = stage;
        loc.instr = index;
        switch (instr.kind) {
          case InstrKind::kLoadGlobal: {
            if (!instr.overlapped)
                break;
            if (stage == 0) {
                report.add(id(), Severity::kError, loc,
                           "overlapped load in the kernel's first "
                           "stage has no previous stage to hide under",
                           "clear Instr::overlapped");
                break;
            }
            const int producer =
                instr.tensor >= 0
                    ? program.tensor(instr.tensor).producer
                    : -1;
            if (producer >= 0 && kernel_tes.count(producer)) {
                std::ostringstream msg;
                msg << "overlapped load of tensor '"
                    << program.tensor(instr.tensor).name
                    << "' prefetches across the in-kernel store of "
                       "TE "
                    << producer << " (RAW)";
                report.add(id(), Severity::kError, loc, msg.str(),
                           "do not prefetch tensors produced inside "
                           "the kernel");
            }
            break;
          }
          case InstrKind::kStoreGlobal:
          case InstrKind::kAtomicAdd: {
            if (instr.tensor < 0)
                break;
            const TensorDecl &decl = program.tensor(instr.tensor);
            if (decl.role == TensorRole::kOutput)
                break;
            if (analysis.consumers(instr.tensor).empty()) {
                report.add(id(), Severity::kWarning, loc,
                           "store to tensor '" + decl.name
                               + "' which no TE or model output "
                                 "consumes",
                           "drop the store or mark the tensor as a "
                           "model output");
            }
            break;
          }
          case InstrKind::kGridSync:
            if (kernel.usesLibrary) {
                report.add(id(), Severity::kError, loc,
                           "closed-source library kernel contains a "
                           "grid.sync(); libraries cannot join "
                           "cooperative launches",
                           "remove the sync or unfuse the library "
                           "call");
            }
            break;
          default:
            break;
        }
    }
};

// ---------------------------------------------------------------------
// plan-overlap
// ---------------------------------------------------------------------

class PlanOverlapRule : public LintRule
{
  public:
    std::string id() const override { return "plan-overlap"; }

    std::string
    description() const override
    {
        return "no two simultaneously-live intermediates share "
               "workspace bytes; planned intervals contain the "
               "observed live intervals";
    }

    void
    run(const LintInput &input, LintReport &report) const override
    {
        // Verify the injected plan when one is provided (mutation
        // tests), else prove the planner's own output sound. The
        // rule is backend-agnostic: the interpreter and the native
        // backend share the workspace layout.
        if (input.plan != nullptr) {
            report.merge(verifyMemoryPlan(input.program,
                                          input.analysis, *input.plan,
                                          input.module));
            return;
        }
        const MemoryPlan plan =
            planMemory(input.program, input.analysis);
        report.merge(verifyMemoryPlan(input.program, input.analysis,
                                      plan, input.module));
    }
};

// ---------------------------------------------------------------------
// unsynced-dep
// ---------------------------------------------------------------------

class UnsyncedDepRule : public LintRule
{
  public:
    std::string id() const override { return "unsynced-dep"; }

    std::string
    description() const override
    {
        return "every def/use edge of the kernel dataflow is ordered "
               "by a fence of sufficient scope (instruction-granular "
               "happens-before)";
    }

    void
    run(const LintInput &input, LintReport &report) const override
    {
        if (input.module == nullptr)
            return;
        if (skipForNonGpuBackend(input, id(), report))
            return;
        // Megakernel modules deleted their grid fences: cross-stage
        // edges are ordered by task-graph events instead, and the
        // task-graph-dep rule owns their coverage.
        std::unique_ptr<TaskGraphReachability> reach;
        if (input.module->megakernel())
            reach = std::make_unique<TaskGraphReachability>(
                input.module->taskGraph);
        for (const Kernel &kernel : input.module->kernels) {
            if (kernel.usesLibrary)
                continue; // libraries synchronize internally
            const KernelDataflow dataflow(input.program,
                                          input.analysis, kernel);
            for (const DepEdge &edge : dataflow.uncoveredEdges()) {
                if (reach != nullptr
                    && edge.def.stage != edge.use.stage
                    && reach->reaches(edge.def.stage, edge.use.stage))
                    continue;
                LintLocation loc;
                loc.kernel = kernel.name;
                loc.stage = edge.use.stage;
                loc.instr = edge.use.instr;
                loc.teId = edge.useTe;
                std::ostringstream msg;
                msg << "unordered dependence: " << edge.toString()
                    << " but no such fence separates them in the "
                       "stream";
                report.add(id(), Severity::kError, loc, msg.str(),
                           edge.required == FenceScope::kGrid
                               ? "insert a kGridSync between the "
                                 "defining and using instructions"
                               : "insert a kBarrier between the "
                                 "defining and using instructions");
            }
        }
    }
};

// ---------------------------------------------------------------------
// redundant-sync
// ---------------------------------------------------------------------

class RedundantSyncRule : public LintRule
{
  public:
    std::string id() const override { return "redundant-sync"; }

    std::string
    description() const override
    {
        return "no fence is provably redundant (subsumed by an "
               "adjacent stronger fence or a kernel boundary, or "
               "covering no dependence edge)";
    }

    void
    run(const LintInput &input, LintReport &report) const override
    {
        if (input.module == nullptr)
            return;
        if (skipForNonGpuBackend(input, id(), report))
            return;
        for (const Kernel &kernel : input.module->kernels) {
            if (kernel.usesLibrary)
                continue;
            const KernelDataflow dataflow(input.program,
                                          input.analysis, kernel);
            for (const FenceVerdict &verdict :
                 dataflow.fenceVerdicts()) {
                if (verdict.action == FenceVerdict::Action::kKeep)
                    continue;
                LintLocation loc;
                loc.kernel = kernel.name;
                loc.stage = verdict.pos.stage;
                loc.instr = verdict.pos.instr;
                std::ostringstream msg;
                msg << (verdict.action
                                == FenceVerdict::Action::kDowngrade
                            ? "downgradable "
                            : "redundant ")
                    << instrKindName(verdict.kind) << ": "
                    << verdict.reason;
                report.add(id(), Severity::kWarning, loc, msg.str(),
                           "run the sync-elimination transform "
                           "(V4 pipeline) or delete the instruction");
            }
        }
    }
};

// ---------------------------------------------------------------------
// task-graph-dep
// ---------------------------------------------------------------------

class TaskGraphDepRule : public LintRule
{
  public:
    std::string id() const override { return "task-graph-dep"; }

    std::string
    description() const override
    {
        return "megakernel task graphs are well formed and acyclic, "
               "and every cross-stage dependence is covered by "
               "task-graph reachability or intra-task program order";
    }

    void
    run(const LintInput &input, LintReport &report) const override
    {
        if (input.module == nullptr || !input.module->megakernel())
            return; // below V5 (or fallback) there is nothing to check
        // Deliberately NOT GPU-only: the native C backend drains the
        // same task graph on a thread pool, so a missing edge races
        // there too.
        const TaskGraph &graph = input.module->taskGraph;
        const Kernel &kernel = input.module->kernels.front();
        LintLocation loc;
        loc.kernel = kernel.name;

        if (input.module->numKernels() != 1) {
            report.add(id(), Severity::kError, loc,
                       "megakernel module has "
                           + std::to_string(input.module->numKernels())
                           + " kernels; the task graph describes "
                             "exactly one persistent kernel",
                       "merge the kernels or drop the task graph");
            return;
        }
        const int num_tasks = graph.numTasks();
        if (num_tasks != static_cast<int>(kernel.stages.size())) {
            report.add(id(), Severity::kError, loc,
                       "task graph has " + std::to_string(num_tasks)
                           + " tasks for a kernel with "
                           + std::to_string(kernel.stages.size())
                           + " stages",
                       "rebuild the task graph from the final stage "
                       "list");
            return;
        }
        bool malformed = false;
        for (const TaskEdge &edge : graph.edges) {
            if (edge.from >= 0 && edge.from < num_tasks
                && edge.to >= 0 && edge.to < num_tasks
                && edge.from != edge.to)
                continue;
            report.add(id(), Severity::kError, loc,
                       "malformed task edge " + edge.toString(),
                       "edge endpoints must name two distinct tasks");
            malformed = true;
        }
        if (malformed)
            return;

        // Acyclicity (Kahn): a cycle deadlocks the scheduler.
        std::vector<int> indeg(static_cast<size_t>(num_tasks), 0);
        const auto succs = graph.successors();
        for (int t = 0; t < num_tasks; ++t)
            for (int s : succs[static_cast<size_t>(t)])
                ++indeg[static_cast<size_t>(s)];
        std::deque<int> frontier;
        for (int t = 0; t < num_tasks; ++t)
            if (indeg[static_cast<size_t>(t)] == 0)
                frontier.push_back(t);
        int ordered = 0;
        while (!frontier.empty()) {
            const int t = frontier.front();
            frontier.pop_front();
            ++ordered;
            for (int s : succs[static_cast<size_t>(t)])
                if (--indeg[static_cast<size_t>(s)] == 0)
                    frontier.push_back(s);
        }
        if (ordered != num_tasks) {
            report.add(id(), Severity::kError, loc,
                       "task graph has a dependence cycle ("
                           + std::to_string(num_tasks - ordered)
                           + " tasks unreachable by topological "
                             "order); the scheduler would deadlock",
                       "break the cycle or fall back to the "
                       "grid-sync form");
            return;
        }

        const TaskGraphReachability reach(graph);

        // Coverage 1: every cross-stage RAW/WAR of the kernel
        // dataflow, independently recomputed here.
        const KernelDataflow dataflow(input.program, input.analysis,
                                      kernel);
        for (const DepEdge &edge : dataflow.edges()) {
            if (edge.def.stage == edge.use.stage)
                continue; // intra-task program order covers it
            if (reach.reaches(edge.def.stage, edge.use.stage))
                continue;
            LintLocation where = loc;
            where.stage = edge.use.stage;
            where.instr = edge.use.instr;
            where.teId = edge.useTe;
            report.add(id(), Severity::kError, where,
                       "cross-stage dependence not covered by the "
                       "task graph: "
                           + edge.toString(),
                       "add a task edge from stage "
                           + std::to_string(edge.def.stage)
                           + " to stage "
                           + std::to_string(edge.use.stage));
        }

        // Coverage 2: per-tensor writer chains (WAW). The dataflow
        // has no WAW kind, so recompute writers from the streams.
        std::map<TensorId, std::vector<int>> writers;
        for (size_t s = 0; s < kernel.stages.size(); ++s) {
            for (const Instr &instr : kernel.stages[s].instrs) {
                if (instr.tensor < 0)
                    continue;
                if (instr.kind != InstrKind::kStoreGlobal
                    && instr.kind != InstrKind::kAtomicAdd
                    && instr.kind != InstrKind::kCompute)
                    continue;
                std::vector<int> &list = writers[instr.tensor];
                if (list.empty()
                    || list.back() != static_cast<int>(s))
                    list.push_back(static_cast<int>(s));
            }
        }
        for (const auto &[tensor, stages] : writers) {
            for (size_t i = 1; i < stages.size(); ++i) {
                if (reach.reaches(stages[i - 1], stages[i]))
                    continue;
                LintLocation where = loc;
                where.stage = stages[i];
                report.add(
                    id(), Severity::kError, where,
                    "unordered writers of tensor '"
                        + input.program.tensor(tensor).name
                        + "': stages " + std::to_string(stages[i - 1])
                        + " and " + std::to_string(stages[i])
                        + " both write it with no task edge between "
                          "them",
                    "add a WAW task edge chaining the writers");
            }
        }
    }
};

} // namespace

void registerBuiltinLintRules(LintRuleRegistry &registry);

void
registerBuiltinLintRules(LintRuleRegistry &registry)
{
    registry.add("grid-sync-race", [] {
        return std::make_unique<GridSyncRaceRule>();
    });
    registry.add("affine-bounds", [] {
        return std::make_unique<AffineBoundsRule>();
    });
    registry.add("resource-caps", [] {
        return std::make_unique<ResourceCapsRule>();
    });
    registry.add("dead-te",
                 [] { return std::make_unique<DeadTeRule>(); });
    registry.add("instr-stream", [] {
        return std::make_unique<InstrStreamRule>();
    });
    registry.add("plan-overlap", [] {
        return std::make_unique<PlanOverlapRule>();
    });
    registry.add("unsynced-dep", [] {
        return std::make_unique<UnsyncedDepRule>();
    });
    registry.add("redundant-sync", [] {
        return std::make_unique<RedundantSyncRule>();
    });
    registry.add("task-graph-dep", [] {
        return std::make_unique<TaskGraphDepRule>();
    });
}

} // namespace souffle
