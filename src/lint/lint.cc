#include "lint/lint.h"

#include <algorithm>

#include "common/logging.h"

namespace souffle {

/** Defined in rules.cc; seeds the global registry. */
void registerBuiltinLintRules(LintRuleRegistry &registry);

LintRuleRegistry &
LintRuleRegistry::global()
{
    static LintRuleRegistry *registry = [] {
        auto *r = new LintRuleRegistry();
        registerBuiltinLintRules(*r);
        return r;
    }();
    return *registry;
}

void
LintRuleRegistry::add(const std::string &id, Factory factory)
{
    SOUFFLE_CHECK(factory != nullptr, "null lint-rule factory");
    for (auto &entry : factories) {
        if (entry.first == id) {
            entry.second = std::move(factory);
            return;
        }
    }
    factories.emplace_back(id, std::move(factory));
}

std::vector<std::string>
LintRuleRegistry::ruleIds() const
{
    std::vector<std::string> ids;
    ids.reserve(factories.size());
    for (const auto &entry : factories)
        ids.push_back(entry.first);
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::unique_ptr<LintRule>
LintRuleRegistry::create(const std::string &id) const
{
    for (const auto &entry : factories) {
        if (entry.first == id)
            return entry.second();
    }
    SOUFFLE_FATAL("unknown lint rule '"
                  << id << "' (known: "
                  << [this] {
                         std::string all;
                         for (const std::string &known : ruleIds())
                             all += (all.empty() ? "" : ", ") + known;
                         return all;
                     }()
                  << ")");
}

std::vector<std::unique_ptr<LintRule>>
LintRuleRegistry::createAll() const
{
    std::vector<std::unique_ptr<LintRule>> rules;
    for (const std::string &id : ruleIds())
        rules.push_back(create(id));
    return rules;
}

std::vector<std::string>
builtinLintRuleIds()
{
    return LintRuleRegistry::global().ruleIds();
}

Linter::Linter() : selected(LintRuleRegistry::global().createAll()) {}

Linter::Linter(const std::vector<std::string> &rule_ids)
{
    for (const std::string &id : rule_ids)
        selected.push_back(LintRuleRegistry::global().create(id));
}

LintReport
Linter::run(const LintInput &input) const
{
    LintReport report;
    for (const auto &rule : selected)
        rule->run(input, report);
    return report;
}

LintReport
Linter::run(CompileContext &ctx) const
{
    LintInput input{ctx.program(), ctx.analysis(),
                    ctx.options.device};
    input.backend = ctx.options.backend;
    if (!ctx.schedules.empty())
        input.schedules = &ctx.schedules;
    if (!ctx.result.module.kernels.empty())
        input.module = &ctx.result.module;
    return run(input);
}

void
LintPass::run(CompileContext &ctx)
{
    const Linter linter;
    const LintReport report = linter.run(ctx);
    ctx.counter("lint-errors", report.errors());
    ctx.counter("lint-warnings", report.warnings());
    ctx.counter("reach-queries", ctx.analysis().reachableQueries());
    if (report.errors() > 0) {
        SOUFFLE_FATAL("strict lint failed:\n" << report.renderText());
    }
    if (report.warnings() > 0)
        SOUFFLE_WARN("lint:\n" << report.renderText());
}

} // namespace souffle
